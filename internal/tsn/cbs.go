package tsn

import (
	"fmt"

	"dynaplat/internal/sim"
)

// Credit-based shaping (IEEE 802.1Qav): an audio/video stream class is
// throttled to a reserved bandwidth (the idle slope) so that it can
// neither starve lower classes nor burst into its own reservation's
// future. Together with the Qbv gates this completes the TSN toolbox the
// paper's Section 5.3 points at: time-triggered windows for control
// traffic, shaped classes for streams, strict priority for the rest.
//
// Credit mechanics per shaped queue:
//   - waiting (frames queued, not transmitting): credit rises at
//     idleSlope [bits/s]
//   - transmitting: credit falls at sendSlope = idleSlope − lineRate
//   - a frame may start only when credit ≥ 0
//   - empty queue with positive credit resets to 0 (no banking)

// CBSConfig reserves bandwidth for one priority queue.
type CBSConfig struct {
	// Queue is the shaped priority queue (e.g. QueuePriority for AV).
	Queue int
	// IdleSlopeBps is the reserved bandwidth in bits/s.
	IdleSlopeBps int64
}

type cbsState struct {
	idleSlope  int64
	creditBits float64
	lastUpdate sim.Time
}

// EnableCBS installs credit-based shaping on a queue at every egress
// port. Must be called before traffic flows.
func (n *Network) EnableCBS(cfg CBSConfig) error {
	if cfg.Queue < 0 || cfg.Queue >= NumQueues {
		return fmt.Errorf("tsn: CBS queue %d out of range", cfg.Queue)
	}
	if cfg.IdleSlopeBps <= 0 || cfg.IdleSlopeBps >= n.cfg.BitsPerSecond {
		return fmt.Errorf("tsn: CBS idle slope %d outside (0, line rate)", cfg.IdleSlopeBps)
	}
	for _, l := range n.egress {
		l.enableCBS(cfg)
	}
	n.cbsTemplates = append(n.cbsTemplates, cfg)
	return nil
}

func (l *link) enableCBS(cfg CBSConfig) {
	if l.cbs == nil {
		l.cbs = map[int]*cbsState{}
	}
	l.cbs[cfg.Queue] = &cbsState{idleSlope: cfg.IdleSlopeBps}
}

// cbsUpdate brings a shaped queue's credit to the current instant while
// the port is not transmitting that queue.
func (l *link) cbsUpdate(q int, now sim.Time) *cbsState {
	st, ok := l.cbs[q]
	if !ok {
		return nil
	}
	dt := now.Sub(st.lastUpdate)
	if dt > 0 {
		if len(l.queues[q]) > 0 {
			st.creditBits += float64(st.idleSlope) * dt.Seconds()
		} else if st.creditBits > 0 {
			st.creditBits = 0 // no banking while idle
		}
		st.lastUpdate = now
	}
	return st
}

// cbsEligible reports whether queue q may transmit now, and if not, when
// its credit reaches zero (zero Time when not shaped or not computable).
func (l *link) cbsEligible(q int, now sim.Time) (bool, sim.Time) {
	st := l.cbsUpdate(q, now)
	if st == nil {
		return true, 0
	}
	if st.creditBits >= 0 {
		return true, 0
	}
	needSec := -st.creditBits / float64(st.idleSlope)
	wake := now.Add(sim.Duration(needSec*1e9) + 1)
	return false, wake
}

// cbsCharge debits a completed transmission of txTime duration.
func (l *link) cbsCharge(q int, tx sim.Duration, lineRate int64) {
	st, ok := l.cbs[q]
	if !ok {
		return
	}
	// During transmission credit changes at sendSlope = idle − line.
	st.creditBits += (float64(st.idleSlope) - float64(lineRate)) * tx.Seconds()
	st.lastUpdate = st.lastUpdate.Add(tx)
}
