package tsn

import (
	"testing"

	"dynaplat/internal/network"
	"dynaplat/internal/sim"
)

func plainNet(k *sim.Kernel) *Network {
	n := New(k, DefaultConfig("backbone"))
	for _, s := range []string{"cam", "ecu", "sink"} {
		n.Attach(s, func(network.Delivery) {})
	}
	return n
}

func TestSingleFrameLatency(t *testing.T) {
	k := sim.NewKernel(1)
	n := plainNet(k)
	var got []network.Delivery
	n.Attach("sink", func(d network.Delivery) { got = append(got, d) })
	n.Send(network.Message{Class: network.ClassControl, Src: "ecu", Dst: "sink", Bytes: 100})
	k.Run()
	if len(got) != 1 {
		t.Fatalf("deliveries = %d", len(got))
	}
	// (100+42)B = 1136 bits at 100Mbps = 11.36us per hop; two hops plus
	// 2us processing: 11.36*2 + 2 = 24.72us → integer ns rounding.
	want := 2*network.TxTime(142, 100_000_000) + 2*sim.Microsecond
	if lat := got[0].Latency(); lat != want {
		t.Errorf("latency = %v, want %v", lat, want)
	}
}

func TestStrictPriority(t *testing.T) {
	// With both classes queued at the same egress port at the same time,
	// control frames must all leave before bulk frames.
	k := sim.NewKernel(1)
	n := plainNet(k)
	var order []network.Class
	n.Attach("sink", func(d network.Delivery) { order = append(order, d.Msg.Class) })
	k.At(0, func() {
		for i := 0; i < 3; i++ {
			n.Send(network.Message{Class: network.ClassBulk, Src: "cam", Dst: "sink", Bytes: 1500})
		}
		for i := 0; i < 3; i++ {
			n.Send(network.Message{Class: network.ClassControl, Src: "ecu", Dst: "sink", Bytes: 64})
		}
	})
	k.Run()
	if len(order) != 6 {
		t.Fatalf("deliveries = %d", len(order))
	}
	// The first bulk frame may already occupy the port (non-preemptive),
	// but after that all control frames must precede remaining bulk.
	ctrlSeen := 0
	for i, c := range order {
		if c == network.ClassControl {
			ctrlSeen++
		} else if i > 0 && ctrlSeen < 3 && i > 1 {
			t.Fatalf("bulk before all control at %d: %v", i, order)
		}
	}
}

func TestGateBlocksBulkDuringControlWindow(t *testing.T) {
	// GCL: 100us control-only, 400us everything else.
	k := sim.NewKernel(1)
	cfg := DefaultConfig("tt")
	cfg.GCL = ControlGCL(100*sim.Microsecond, 400*sim.Microsecond)
	n := New(k, cfg)
	n.Attach("cam", func(network.Delivery) {})
	var bulkAt sim.Time
	n.Attach("sink", func(d network.Delivery) {
		if d.Msg.Class == network.ClassBulk {
			bulkAt = d.Delivered
		}
	})
	// Bulk frame enqueued at t=0, while only the control gate is open:
	// it must wait for the second window at 100us.
	n.Send(network.Message{Class: network.ClassBulk, Src: "cam", Dst: "sink", Bytes: 64})
	k.Run()
	if bulkAt < sim.Time(100*sim.Microsecond) {
		t.Errorf("bulk egressed at %v, inside the control-only window", bulkAt)
	}
}

func TestGuardBandPreventsOverrun(t *testing.T) {
	// A frame that cannot finish before its gate closes must wait for the
	// next window rather than straddle the boundary.
	k := sim.NewKernel(1)
	cfg := DefaultConfig("tt")
	// Bulk window 50us: a 1500B frame needs 123.36us → never fits the
	// first window; give it a 200us second bulk window via a 3-entry GCL.
	cfg.GCL = []GateEntry{
		{OpenMask: 1 << QueueBulk, Dur: 50 * sim.Microsecond},
		{OpenMask: 1 << QueueControl, Dur: 100 * sim.Microsecond},
		{OpenMask: 1 << QueueBulk, Dur: 200 * sim.Microsecond},
	}
	n := New(k, cfg)
	n.Attach("cam", func(network.Delivery) {})
	var done sim.Time
	n.Attach("sink", func(d network.Delivery) { done = d.Delivered })
	n.Send(network.Message{Class: network.ClassBulk, Src: "cam", Dst: "sink", Bytes: 1500})
	k.Run()
	// Uplink (ungated) takes 123.36us+; egress can only start in the
	// third window at 150us.
	if done < sim.Time(150*sim.Microsecond) {
		t.Errorf("frame finished at %v, must not start before 150us window", done)
	}
	if done > sim.Time(350*sim.Microsecond) {
		t.Errorf("frame finished at %v, should fit the 150..350us window", done)
	}
}

func TestControlLatencyImmuneToBulkLoad(t *testing.T) {
	// E4's mechanism: with a control-only gate window, worst-case control
	// latency is independent of bulk load.
	run := func(bulkFrames int) sim.Duration {
		k := sim.NewKernel(1)
		cfg := DefaultConfig("tt")
		cfg.GCL = ControlGCL(200*sim.Microsecond, 800*sim.Microsecond)
		n := New(k, cfg)
		n.Attach("cam", func(network.Delivery) {})
		n.Attach("ecu", func(network.Delivery) {})
		n.Attach("sink", func(network.Delivery) {})
		for i := 0; i < bulkFrames; i++ {
			n.Send(network.Message{Class: network.ClassBulk, Src: "cam", Dst: "sink", Bytes: 1500})
		}
		// Periodic control messages.
		tick := k.Every(0, sim.Millisecond, func() {
			n.Send(network.Message{Class: network.ClassControl, Src: "ecu", Dst: "sink", Bytes: 64})
		})
		k.RunUntil(sim.Time(50 * sim.Millisecond))
		tick.Stop()
		return n.Latency(network.ClassControl).PercentileDuration(100)
	}
	quiet := run(0)
	loaded := run(2000)
	if loaded > quiet+5*sim.Microsecond {
		t.Errorf("control p100 under load %v ≫ quiet %v", loaded, quiet)
	}
}

func TestBroadcast(t *testing.T) {
	k := sim.NewKernel(1)
	n := plainNet(k)
	got := map[string]int{}
	for _, s := range []string{"cam", "ecu", "sink"} {
		s := s
		n.Attach(s, func(network.Delivery) { got[s]++ })
	}
	n.Send(network.Message{Class: network.ClassControl, Src: "cam", Bytes: 10})
	k.Run()
	if got["cam"] != 0 || got["ecu"] != 1 || got["sink"] != 1 {
		t.Errorf("broadcast counts = %v", got)
	}
}

func TestSendPanics(t *testing.T) {
	k := sim.NewKernel(1)
	n := plainNet(k)
	for _, msg := range []network.Message{
		{Src: "ghost", Bytes: 10},
		{Src: "cam", Bytes: 1501},
		{Src: "cam", Bytes: -1},
	} {
		msg := msg
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Send(%+v) did not panic", msg)
				}
			}()
			n.Send(msg)
		}()
	}
}

func TestBadGCLPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-duration GCL entry accepted")
		}
	}()
	New(sim.NewKernel(1), Config{GCL: []GateEntry{{OpenMask: AllOpen, Dur: 0}}})
}

func TestQueueFor(t *testing.T) {
	if QueueFor(network.ClassControl) != QueueControl ||
		QueueFor(network.ClassPriority) != QueuePriority ||
		QueueFor(network.ClassBulk) != QueueBulk {
		t.Error("QueueFor mapping wrong")
	}
}

func TestGateStateConstant(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k, DefaultConfig("x"))
	n.Attach("a", func(network.Delivery) {})
	l := n.egress["a"]
	open, next := l.gateState(QueueControl, 12345)
	if !open || next != 0 {
		t.Errorf("ungated link: open=%v next=%v", open, next)
	}
}
