package flexray

import (
	"testing"

	"dynaplat/internal/network"
	"dynaplat/internal/sim"
)

func cluster(k *sim.Kernel) *Bus {
	b := New(k, DefaultConfig("chassis"))
	b.Attach("ctrl", func(network.Delivery) {})
	b.Attach("bulk", func(network.Delivery) {})
	return b
}

func TestCycleLength(t *testing.T) {
	cfg := DefaultConfig("x")
	// 40*100us + 100*10us = 5ms
	if got := cfg.CycleLength(); got != 5*sim.Millisecond {
		t.Errorf("cycle = %v, want 5ms", got)
	}
}

func TestStaticSlotDeterminism(t *testing.T) {
	k := sim.NewKernel(1)
	b := cluster(k)
	var got []network.Delivery
	b.Attach("sink", func(d network.Delivery) { got = append(got, d) })
	b.AssignSlot(2, "ctrl")
	// Enqueue at t=0; slot 2 of the first cycle ends at 300us.
	b.Send(network.Message{Class: network.ClassControl, Src: "ctrl", Dst: "sink", Bytes: 8})
	k.RunFor(20 * sim.Millisecond)
	if len(got) != 1 {
		t.Fatalf("deliveries = %d", len(got))
	}
	if got[0].Delivered != sim.Time(300*sim.Microsecond) {
		t.Errorf("delivered at %v, want 300us", got[0].Delivered)
	}
	if b.StaticSent != 1 {
		t.Errorf("StaticSent = %d", b.StaticSent)
	}
}

func TestStaticSlotIsImmuneToDynamicLoad(t *testing.T) {
	// The paper's Section 5.3 claim: TDMA isolation means static latency
	// does not depend on dynamic-segment load.
	latencyUnder := func(dynamicFrames int) sim.Duration {
		k := sim.NewKernel(1)
		b := cluster(k)
		var lat sim.Duration
		b.Attach("sink", func(d network.Delivery) {
			if d.Msg.Class == network.ClassControl {
				lat = d.Latency()
			}
		})
		b.AssignSlot(0, "ctrl")
		for i := 0; i < dynamicFrames; i++ {
			b.Send(network.Message{ID: uint32(i + 1), Class: network.ClassBulk,
				Src: "bulk", Dst: "sink", Bytes: 128})
		}
		b.Send(network.Message{Class: network.ClassControl, Src: "ctrl", Dst: "sink", Bytes: 8})
		k.RunFor(100 * sim.Millisecond)
		return lat
	}
	quiet := latencyUnder(0)
	loaded := latencyUnder(500)
	if quiet != loaded {
		t.Errorf("static latency changed under load: %v vs %v", quiet, loaded)
	}
}

func TestDynamicPriorityOrder(t *testing.T) {
	k := sim.NewKernel(1)
	b := cluster(k)
	var order []uint32
	b.Attach("sink", func(d network.Delivery) { order = append(order, d.Msg.ID) })
	b.Send(network.Message{ID: 9, Class: network.ClassBulk, Src: "bulk", Dst: "sink", Bytes: 8})
	b.Send(network.Message{ID: 3, Class: network.ClassBulk, Src: "bulk", Dst: "sink", Bytes: 8})
	b.Send(network.Message{ID: 6, Class: network.ClassBulk, Src: "bulk", Dst: "sink", Bytes: 8})
	k.RunFor(10 * sim.Millisecond)
	if len(order) != 3 || order[0] != 3 || order[1] != 6 || order[2] != 9 {
		t.Errorf("dynamic order = %v, want ascending ID", order)
	}
}

func TestDynamicDeferralToNextCycle(t *testing.T) {
	k := sim.NewKernel(1)
	b := cluster(k)
	var delivered []sim.Time
	b.Attach("sink", func(d network.Delivery) { delivered = append(delivered, d.Delivered) })
	// 100 minislots of 10us = 1ms dynamic segment per cycle. One 2000-byte
	// frame at 10 Mbps = 1.6ms > segment → it can never fit... so use
	// 1000B = 800us = 80 minislots; two of them cannot share one cycle.
	b.Send(network.Message{ID: 1, Class: network.ClassBulk, Src: "bulk", Dst: "sink", Bytes: 1000})
	b.Send(network.Message{ID: 2, Class: network.ClassBulk, Src: "bulk", Dst: "sink", Bytes: 1000})
	k.RunFor(30 * sim.Millisecond)
	if len(delivered) != 2 {
		t.Fatalf("deliveries = %d", len(delivered))
	}
	// First in cycle 0's dynamic segment, second one cycle later.
	if delivered[1].Sub(delivered[0]) != DefaultConfig("x").CycleLength() {
		t.Errorf("deferral gap = %v, want one cycle", delivered[1].Sub(delivered[0]))
	}
	if b.DynamicDeferred == 0 {
		t.Error("DynamicDeferred not counted")
	}
}

func TestSlotAssignmentErrors(t *testing.T) {
	k := sim.NewKernel(1)
	b := cluster(k)
	b.AssignSlot(0, "ctrl")
	for _, fn := range []func(){
		func() { b.AssignSlot(0, "bulk") },
		func() { b.AssignSlot(-1, "ctrl") },
		func() { b.AssignSlot(40, "ctrl") },
		func() { b.Send(network.Message{Class: network.ClassControl, Src: "bulk", Bytes: 1}) },
		func() { b.Send(network.Message{Class: network.ClassControl, Src: "ctrl", Bytes: 64}) },
		func() { b.Send(network.Message{Src: "ghost", Bytes: 1}) },
	} {
		fn := fn
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestStaticPeriodicStream(t *testing.T) {
	// A 5ms-periodic control app transmitting in its own slot sees
	// constant latency — zero jitter.
	k := sim.NewKernel(1)
	b := cluster(k)
	var lat sim.Sample
	b.Attach("sink", func(d network.Delivery) { lat.AddDuration(d.Latency()) })
	b.AssignSlot(5, "ctrl")
	k.Every(0, 5*sim.Millisecond, func() {
		b.Send(network.Message{Class: network.ClassControl, Src: "ctrl", Dst: "sink", Bytes: 16})
	})
	k.RunUntil(sim.Time(100 * sim.Millisecond))
	if lat.Count() < 19 {
		t.Fatalf("samples = %d", lat.Count())
	}
	if j := lat.Jitter(); j != 0 {
		t.Errorf("static-slot jitter = %v, want 0", j)
	}
}
