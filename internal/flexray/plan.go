package flexray

import (
	"fmt"
	"sort"
)

// PlanSlots computes and applies a static-segment slot assignment from
// per-station demand (slots needed per communication cycle). The design-
// time TDMA schedule is exactly what the paper's modeling approach is
// supposed to generate from interface periods (Section 2.2): a station
// publishing an interface every cycle needs one slot, one publishing at
// half the cycle rate can share, and so on.
//
// Slots are assigned interleaved round-robin (not in contiguous blocks)
// so each station's transmit opportunities spread evenly across the
// cycle, minimizing worst-case wait.
func PlanSlots(b *Bus, demand map[string]int) error {
	total := 0
	stations := make([]string, 0, len(demand))
	for s, n := range demand {
		if n < 0 {
			return fmt.Errorf("flexray: negative demand for %s", s)
		}
		if n > 0 {
			stations = append(stations, s)
			total += n
		}
	}
	if total > b.cfg.StaticSlots {
		return fmt.Errorf("flexray: demand %d exceeds %d static slots",
			total, b.cfg.StaticSlots)
	}
	sort.Strings(stations)
	remaining := map[string]int{}
	for _, s := range stations {
		remaining[s] = demand[s]
	}
	slot := 0
	for total > 0 {
		for _, s := range stations {
			if remaining[s] == 0 {
				continue
			}
			b.AssignSlot(slot, s)
			slot++
			remaining[s]--
			total--
		}
	}
	return nil
}

// SlotsOf returns the static slots owned by a station, ascending.
func (b *Bus) SlotsOf(station string) []int {
	var out []int
	for idx, owner := range b.slotOwner {
		if owner == station {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out
}

// DemandForPeriod returns how many static slots per cycle a publisher
// with the given message period needs (at least one; more when the
// period is shorter than the cycle).
func (c Config) DemandForPeriod(period int64, cycleNs int64) int {
	if period <= 0 || cycleNs <= 0 {
		return 1
	}
	n := int((cycleNs + period - 1) / period)
	if n < 1 {
		n = 1
	}
	return n
}
