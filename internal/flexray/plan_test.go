package flexray

import (
	"testing"

	"dynaplat/internal/network"
	"dynaplat/internal/sim"
)

func TestPlanSlotsInterleaves(t *testing.T) {
	k := sim.NewKernel(1)
	b := New(k, DefaultConfig("chassis"))
	b.Attach("fast", func(network.Delivery) {})
	b.Attach("slow", func(network.Delivery) {})
	if err := PlanSlots(b, map[string]int{"fast": 3, "slow": 1}); err != nil {
		t.Fatal(err)
	}
	fast := b.SlotsOf("fast")
	slow := b.SlotsOf("slow")
	if len(fast) != 3 || len(slow) != 1 {
		t.Fatalf("fast=%v slow=%v", fast, slow)
	}
	// Interleaved: fast gets 0,2,3 and slow gets 1 (round-robin order).
	if fast[0] != 0 || slow[0] != 1 {
		t.Errorf("assignment fast=%v slow=%v", fast, slow)
	}
}

func TestPlanSlotsOverDemand(t *testing.T) {
	k := sim.NewKernel(1)
	b := New(k, DefaultConfig("x"))
	if err := PlanSlots(b, map[string]int{"a": 41}); err == nil {
		t.Error("over-demand accepted")
	}
	if err := PlanSlots(b, map[string]int{"a": -1}); err == nil {
		t.Error("negative demand accepted")
	}
	// Zero-demand stations get nothing but don't error.
	if err := PlanSlots(b, map[string]int{"a": 1, "b": 0}); err != nil {
		t.Fatal(err)
	}
	if len(b.SlotsOf("b")) != 0 {
		t.Error("zero-demand station got slots")
	}
}

func TestPlannedSlotsCarryTraffic(t *testing.T) {
	// A 2.5ms-period publisher on a 5ms cycle needs 2 slots; with them
	// planned, all messages ride the static segment within one cycle.
	k := sim.NewKernel(1)
	cfg := DefaultConfig("chassis")
	b := New(k, cfg)
	b.Attach("ctrl", func(network.Delivery) {})
	var got []sim.Time
	b.Attach("sink", func(d network.Delivery) { got = append(got, d.Delivered) })
	period := int64(2500 * sim.Microsecond)
	demand := cfg.DemandForPeriod(period, int64(cfg.CycleLength()))
	if demand != 2 {
		t.Fatalf("demand = %d, want 2", demand)
	}
	if err := PlanSlots(b, map[string]int{"ctrl": demand}); err != nil {
		t.Fatal(err)
	}
	k.Every(0, sim.Duration(period), func() {
		b.Send(network.Message{Class: network.ClassControl, Src: "ctrl",
			Dst: "sink", Bytes: 16})
	})
	k.RunUntil(sim.Time(100 * sim.Millisecond))
	// 40 messages in 100ms; all delivered (backlog bounded).
	if len(got) < 38 {
		t.Errorf("deliveries = %d, want ~40", len(got))
	}
	if b.StaticSent < 38 {
		t.Errorf("static sent = %d", b.StaticSent)
	}
}

func TestDemandForPeriodEdges(t *testing.T) {
	cfg := DefaultConfig("x")
	if d := cfg.DemandForPeriod(0, int64(cfg.CycleLength())); d != 1 {
		t.Errorf("zero period demand = %d", d)
	}
	// Period ≫ cycle still needs one slot.
	if d := cfg.DemandForPeriod(int64(sim.Second), int64(cfg.CycleLength())); d != 1 {
		t.Errorf("slow demand = %d", d)
	}
}
