// Package flexray simulates a FlexRay bus: a fixed-length communication
// cycle with a time-triggered static TDMA segment and a priority-ordered
// dynamic minislot segment. It implements network.Network.
//
// The paper (Section 5.3) cites exactly this combination as the classic
// way to partition deterministic from non-deterministic communication:
// ClassControl messages ride pre-assigned static slots, everything else
// arbitrates in the dynamic segment by ascending frame ID.
package flexray

import (
	"fmt"
	"sort"

	"dynaplat/internal/network"
	"dynaplat/internal/sim"
)

// Config parameterizes a FlexRay cluster.
type Config struct {
	Name string
	// BitsPerSecond is the channel rate (FlexRay: typically 10 Mbps).
	BitsPerSecond int64
	// SlotLength is the static slot duration.
	SlotLength sim.Duration
	// StaticSlots is the number of static slots per cycle.
	StaticSlots int
	// StaticPayload is the fixed payload capacity of a static slot.
	StaticPayload int
	// MinislotLength is the dynamic-segment minislot duration.
	MinislotLength sim.Duration
	// Minislots is the number of minislots per cycle.
	Minislots int
}

// DefaultConfig returns a 10 Mbps cluster with a 5 ms cycle:
// 40 static slots of 100 µs and 100 minislots of 10 µs.
func DefaultConfig(name string) Config {
	return Config{
		Name:           name,
		BitsPerSecond:  10_000_000,
		SlotLength:     100 * sim.Microsecond,
		StaticSlots:    40,
		StaticPayload:  32,
		MinislotLength: 10 * sim.Microsecond,
		Minislots:      100,
	}
}

// CycleLength returns the total communication-cycle duration.
func (c Config) CycleLength() sim.Duration {
	return sim.Duration(c.StaticSlots)*c.SlotLength +
		sim.Duration(c.Minislots)*c.MinislotLength
}

// Bus is a simulated FlexRay cluster.
type Bus struct {
	cfg Config
	k   *sim.Kernel
	rx  map[string]network.Receiver
	// slotOwner maps static slot index → owning station.
	slotOwner map[int]string
	staticQ   map[string][]*queued // per station
	dynamicQ  []*queued
	seq       uint64
	started   bool
	// ticker drives the cyclic schedule; held so Stop can tear the bus
	// down instead of ticking forever (dynalint droppedref).
	ticker *sim.Ticker

	// Stats
	StaticSent  int64
	DynamicSent int64
	// StaticLatency and DynamicLatency sample enqueue→delivery times.
	StaticLatency  sim.Sample
	DynamicLatency sim.Sample
	// DynamicDeferred counts frames that could not fit in their cycle's
	// remaining minislots.
	DynamicDeferred int64

	tap network.Tap
}

type queued struct {
	msg      network.Message
	enqueued sim.Time
	seq      uint64
	span     uint64
}

// New creates a FlexRay bus on the kernel. The cyclic schedule starts
// lazily with the first Send.
func New(k *sim.Kernel, cfg Config) *Bus {
	if cfg.StaticSlots <= 0 || cfg.SlotLength <= 0 {
		panic("flexray: static segment must be configured")
	}
	if cfg.BitsPerSecond <= 0 {
		cfg.BitsPerSecond = 10_000_000
	}
	return &Bus{
		cfg:       cfg,
		k:         k,
		rx:        map[string]network.Receiver{},
		slotOwner: map[int]string{},
		staticQ:   map[string][]*queued{},
	}
}

// Name implements network.Network.
func (b *Bus) Name() string { return b.cfg.Name }

// SetTap installs an observability tap; nil disables it. The untapped
// path costs one nil check per frame event.
func (b *Bus) SetTap(t network.Tap) { b.tap = t }

// Attach implements network.Network.
func (b *Bus) Attach(station string, rx network.Receiver) { b.rx[station] = rx }

// AssignSlot reserves static slot idx for the station. Slots are the
// design-time TDMA schedule; assigning an owned slot panics.
func (b *Bus) AssignSlot(idx int, station string) {
	if idx < 0 || idx >= b.cfg.StaticSlots {
		panic(fmt.Sprintf("flexray: slot %d out of range [0,%d)", idx, b.cfg.StaticSlots))
	}
	if owner, ok := b.slotOwner[idx]; ok {
		panic(fmt.Sprintf("flexray: slot %d already owned by %s", idx, owner))
	}
	b.slotOwner[idx] = station
}

// Send implements network.Network. ClassControl messages require the
// source to own at least one static slot and to fit the static payload;
// other classes go to the dynamic segment.
func (b *Bus) Send(msg network.Message) {
	if _, ok := b.rx[msg.Src]; !ok {
		panic(fmt.Sprintf("flexray: source %q not attached", msg.Src))
	}
	q := &queued{msg: msg, enqueued: b.k.Now(), seq: b.seq}
	b.seq++
	if b.tap != nil {
		q.span = b.tap.FrameEnqueued(b.cfg.Name, &q.msg, q.enqueued)
	}
	if msg.Class == network.ClassControl {
		if msg.Bytes > b.cfg.StaticPayload {
			panic(fmt.Sprintf("flexray: control payload %dB exceeds static slot %dB",
				msg.Bytes, b.cfg.StaticPayload))
		}
		if !b.ownsSlot(msg.Src) {
			panic(fmt.Sprintf("flexray: %s owns no static slot", msg.Src))
		}
		b.staticQ[msg.Src] = append(b.staticQ[msg.Src], q)
	} else {
		b.dynamicQ = append(b.dynamicQ, q)
	}
	b.start()
}

func (b *Bus) ownsSlot(station string) bool {
	for _, s := range b.slotOwner {
		if s == station {
			return true
		}
	}
	return false
}

// start launches the cyclic schedule aligned to cycle boundaries.
func (b *Bus) start() {
	if b.started {
		return
	}
	b.started = true
	cycle := b.cfg.CycleLength()
	// Align to the next cycle boundary.
	now := b.k.Now()
	next := (sim.Duration(now) + cycle - 1) / cycle * cycle
	b.ticker = b.k.Every(sim.Time(next), cycle, b.runCycle)
}

// Stop halts the cyclic schedule. Frames already slotted into the
// current cycle still deliver; no further cycles run. A later Send
// restarts the schedule at the next cycle boundary.
func (b *Bus) Stop() {
	if !b.started {
		return
	}
	b.started = false
	b.ticker.Stop()
	b.ticker = nil
}

// runCycle executes one communication cycle starting now.
func (b *Bus) runCycle() {
	cycleStart := b.k.Now()
	// Static segment: each slot fires at its offset; the frame queued
	// longest for the owning station is transmitted.
	for idx := 0; idx < b.cfg.StaticSlots; idx++ {
		owner, ok := b.slotOwner[idx]
		if !ok {
			continue
		}
		slotIdx := idx
		slotEnd := cycleStart.Add(sim.Duration(slotIdx+1) * b.cfg.SlotLength)
		b.k.At(slotEnd, func() {
			queue := b.staticQ[owner]
			if len(queue) == 0 {
				return
			}
			q := queue[0]
			// Only frames enqueued before the slot began may use it.
			slotStart := slotEnd.Add(-b.cfg.SlotLength)
			if q.enqueued > slotStart {
				return
			}
			b.staticQ[owner] = queue[1:]
			b.StaticSent++
			b.StaticLatency.AddDuration(b.k.Now().Sub(q.enqueued))
			b.k.Trace("flexray", "%s: static slot %d %s %dB", b.cfg.Name, slotIdx, owner, q.msg.Bytes)
			if b.tap != nil {
				b.tap.FrameTxStart(b.cfg.Name, q.span, slotEnd.Add(-b.cfg.SlotLength))
			}
			b.deliver(q)
		})
	}
	// Dynamic segment: minislot arbitration in ascending frame-ID order.
	dynStart := cycleStart.Add(sim.Duration(b.cfg.StaticSlots) * b.cfg.SlotLength)
	b.k.At(dynStart, func() { b.runDynamic(dynStart) })
}

func (b *Bus) runDynamic(dynStart sim.Time) {
	// Snapshot: only frames already queued at segment start arbitrate.
	var ready []*queued
	var later []*queued
	for _, q := range b.dynamicQ {
		if q.enqueued <= dynStart {
			ready = append(ready, q)
		} else {
			later = append(later, q)
		}
	}
	sort.SliceStable(ready, func(i, j int) bool {
		if ready[i].msg.ID != ready[j].msg.ID {
			return ready[i].msg.ID < ready[j].msg.ID
		}
		return ready[i].seq < ready[j].seq
	})
	msLeft := b.cfg.Minislots
	offset := sim.Duration(0)
	var deferred []*queued
	for _, q := range ready {
		tx := network.TxTime(q.msg.Bytes, b.cfg.BitsPerSecond)
		need := int((tx + b.cfg.MinislotLength - 1) / b.cfg.MinislotLength)
		if need < 1 {
			need = 1
		}
		if need > msLeft {
			// Does not fit this cycle: consumes one empty minislot
			// (its slot counter passes) and waits.
			if msLeft > 0 {
				msLeft--
				offset += b.cfg.MinislotLength
			}
			deferred = append(deferred, q)
			b.DynamicDeferred++
			continue
		}
		msLeft -= need
		offset += sim.Duration(need) * b.cfg.MinislotLength
		end := dynStart.Add(offset)
		q := q
		b.DynamicSent++
		b.k.At(end, func() {
			b.DynamicLatency.AddDuration(b.k.Now().Sub(q.enqueued))
			b.k.Trace("flexray", "%s: dynamic id=%#x %s %dB", b.cfg.Name, q.msg.ID, q.msg.Src, q.msg.Bytes)
			if b.tap != nil {
				b.tap.FrameTxStart(b.cfg.Name, q.span, b.k.Now())
			}
			b.deliver(q)
		})
	}
	b.dynamicQ = append(deferred, later...)
}

func (b *Bus) deliver(q *queued) {
	d := network.Delivery{Msg: q.msg, Enqueued: q.enqueued, Delivered: b.k.Now()}
	if q.msg.Dst != "" {
		if rx, ok := b.rx[q.msg.Dst]; ok {
			if b.tap != nil {
				b.tap.FrameDelivered(b.cfg.Name, q.span, &q.msg, q.msg.Dst, b.k.Now())
			}
			rx(d)
		} else if b.tap != nil {
			b.tap.FrameLost(b.cfg.Name, q.span, &q.msg, "no-receiver", b.k.Now())
		}
		return
	}
	names := make([]string, 0, len(b.rx))
	for n := range b.rx {
		if n != q.msg.Src {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		if b.tap != nil {
			b.tap.FrameDelivered(b.cfg.Name, q.span, &q.msg, n, b.k.Now())
		}
		b.rx[n](d)
	}
}
