// Package pkg implements the paper's Section 4.1 package security:
// software packages are signed by authenticated authorities and verified
// before installation. ECUs without the compute power for public-key
// cryptography delegate verification to an *update master* they share a
// trust relationship (symmetric key) with; masters are instantiated
// redundantly to avoid a single point of failure.
package pkg

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"dynaplat/internal/sim"
)

// Package is one deliverable software unit.
type Package struct {
	App     string
	Version int
	Image   []byte
}

// Signed wraps a package with its authority signature.
type Signed struct {
	Pkg       Package
	Authority string
	Signature []byte
}

// digest canonicalizes the signed content.
func digest(p Package) []byte {
	h := sha256.New()
	h.Write([]byte(p.App))
	var v [8]byte
	binary.BigEndian.PutUint64(v[:], uint64(p.Version))
	h.Write(v[:])
	h.Write(p.Image)
	return h.Sum(nil)
}

// Authority signs packages (the OEM backend).
type Authority struct {
	Name string
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
}

// NewAuthority creates a deterministic signing authority from a seed.
func NewAuthority(name string, seed [32]byte) *Authority {
	priv := ed25519.NewKeyFromSeed(seed[:])
	return &Authority{Name: name, priv: priv, pub: priv.Public().(ed25519.PublicKey)}
}

// PublicKey returns the authority's verification key.
func (a *Authority) PublicKey() ed25519.PublicKey { return a.pub }

// Sign produces a signed package.
func (a *Authority) Sign(p Package) Signed {
	return Signed{Pkg: p, Authority: a.Name, Signature: ed25519.Sign(a.priv, digest(p))}
}

// TrustStore holds the authority keys an ECU accepts.
type TrustStore struct {
	keys map[string]ed25519.PublicKey
}

// NewTrustStore creates an empty store.
func NewTrustStore() *TrustStore { return &TrustStore{keys: map[string]ed25519.PublicKey{}} }

// Trust adds an authority's key.
func (t *TrustStore) Trust(name string, key ed25519.PublicKey) { t.keys[name] = key }

// Revoke removes an authority.
func (t *TrustStore) Revoke(name string) { delete(t.keys, name) }

// Errors returned by verification.
var (
	ErrUnknownAuthority = errors.New("pkg: unknown authority")
	ErrBadSignature     = errors.New("pkg: signature verification failed")
)

// Verify checks a signed package against the trust store.
func (t *TrustStore) Verify(s Signed) error {
	key, ok := t.keys[s.Authority]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownAuthority, s.Authority)
	}
	if !ed25519.Verify(key, digest(s.Pkg), s.Signature) {
		return ErrBadSignature
	}
	return nil
}

// --- Verification cost model ------------------------------------------------

// Crypto cost constants, in CPU cycles. An Ed25519 verify costs roughly
// 500k cycles on a small core; SHA-256 hashing ~15 cycles/byte. Hardware
// crypto modules accelerate both by ~50x (Section 4.1's "not all ECUs
// might have sufficient power").
const (
	verifyBaseCycles   = 500_000
	hashCyclesPerByte  = 15
	hwAccelFactor      = 50
	hmacBaseCycles     = 2_000
	hmacCyclesPerByte  = 15 // HMAC-SHA256 streams at SHA-256 speed
	forwardSetupCycles = 10_000
)

// VerifyCost returns the virtual time a full signature verification of an
// n-byte package takes at cpuMHz, with or without a crypto module.
func VerifyCost(n int, cpuMHz int, cryptoHW bool) sim.Duration {
	cycles := int64(verifyBaseCycles) + int64(n)*hashCyclesPerByte
	if cryptoHW {
		cycles /= hwAccelFactor
	}
	if cpuMHz <= 0 {
		cpuMHz = 1
	}
	return sim.Duration(cycles * 1000 / int64(cpuMHz))
}

// MACCost returns the virtual time an HMAC check of an n-byte package
// takes (the weak-ECU side of master-mediated verification).
func MACCost(n int, cpuMHz int, cryptoHW bool) sim.Duration {
	cycles := int64(hmacBaseCycles) + int64(n)*hmacCyclesPerByte
	if cryptoHW {
		cycles /= hwAccelFactor
	}
	if cpuMHz <= 0 {
		cpuMHz = 1
	}
	return sim.Duration(cycles * 1000 / int64(cpuMHz))
}

// --- Update master -----------------------------------------------------------

// MasterECU describes one update-master candidate.
type MasterECU struct {
	Name     string
	CPUMHz   int
	CryptoHW bool
	// Alive is toggled by fault injection.
	Alive bool
}

// MasterPool is the redundant set of update masters. Verification
// requests go to the first live master (Section 4.1: "the update master
// would need to be instantiated in a redundant fashion").
type MasterPool struct {
	k       *sim.Kernel
	trust   *TrustStore
	masters []*MasterECU
	// psk maps weak-ECU name → pre-shared key (the trust relationship).
	psk map[string][]byte

	// Verified and Rejected count master-side outcomes.
	Verified, Rejected int64
}

// NewMasterPool creates a pool over the given masters.
func NewMasterPool(k *sim.Kernel, trust *TrustStore, masters []*MasterECU) *MasterPool {
	return &MasterPool{k: k, trust: trust, masters: masters, psk: map[string][]byte{}}
}

// Enroll establishes the trust relationship with a weak ECU.
func (mp *MasterPool) Enroll(weakECU string, key []byte) {
	mp.psk[weakECU] = append([]byte(nil), key...)
}

// liveMaster returns the first live master, or nil.
func (mp *MasterPool) liveMaster() *MasterECU {
	for _, m := range mp.masters {
		if m.Alive {
			return m
		}
	}
	return nil
}

// Forwarded is a master-verified package with an HMAC tag the weak ECU
// can check cheaply.
type Forwarded struct {
	Signed Signed
	Tag    []byte
}

// ErrNoMaster reports that every master is down.
var ErrNoMaster = errors.New("pkg: no live update master")

// ErrNotEnrolled reports a weak ECU without a trust relationship.
var ErrNotEnrolled = errors.New("pkg: ECU not enrolled with update master")

// VerifyFor verifies a signed package on behalf of a weak ECU and, in
// virtual time, delivers a MAC-tagged package to done. The latency is the
// master's verification cost; the weak ECU then checks the cheap MAC.
func (mp *MasterPool) VerifyFor(weakECU string, s Signed, done func(Forwarded, error)) error {
	key, ok := mp.psk[weakECU]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotEnrolled, weakECU)
	}
	m := mp.liveMaster()
	if m == nil {
		return ErrNoMaster
	}
	cost := VerifyCost(len(s.Pkg.Image), m.CPUMHz, m.CryptoHW) +
		sim.Duration(forwardSetupCycles*1000/int64(max(m.CPUMHz, 1)))
	mp.k.After(cost, func() {
		if err := mp.trust.Verify(s); err != nil {
			mp.Rejected++
			done(Forwarded{}, err)
			return
		}
		mp.Verified++
		mac := hmac.New(sha256.New, key)
		mac.Write(digest(s.Pkg))
		done(Forwarded{Signed: s, Tag: mac.Sum(nil)}, nil)
	})
	return nil
}

// CheckForwarded is the weak-ECU side: an HMAC check over the digest.
func CheckForwarded(f Forwarded, key []byte) error {
	mac := hmac.New(sha256.New, key)
	mac.Write(digest(f.Signed.Pkg))
	if !hmac.Equal(mac.Sum(nil), f.Tag) {
		return ErrBadSignature
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
