package pkg

import (
	"errors"
	"testing"

	"dynaplat/internal/sim"
)

func authority() *Authority {
	var seed [32]byte
	copy(seed[:], "dynaplat-test-authority-seed!!!!")
	return NewAuthority("OEM", seed)
}

func samplePkg() Package {
	return Package{App: "brake", Version: 2, Image: []byte("binary image contents")}
}

func TestSignVerify(t *testing.T) {
	a := authority()
	ts := NewTrustStore()
	ts.Trust(a.Name, a.PublicKey())
	s := a.Sign(samplePkg())
	if err := ts.Verify(s); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifyRejectsTamper(t *testing.T) {
	a := authority()
	ts := NewTrustStore()
	ts.Trust(a.Name, a.PublicKey())
	cases := map[string]func(*Signed){
		"image":     func(s *Signed) { s.Pkg.Image[0] ^= 0xFF },
		"version":   func(s *Signed) { s.Pkg.Version++ },
		"app":       func(s *Signed) { s.Pkg.App = "steer" },
		"signature": func(s *Signed) { s.Signature[3] ^= 0x01 },
	}
	for name, mutate := range cases {
		s := a.Sign(samplePkg())
		s.Pkg.Image = append([]byte(nil), s.Pkg.Image...)
		s.Signature = append([]byte(nil), s.Signature...)
		mutate(&s)
		if err := ts.Verify(s); !errors.Is(err, ErrBadSignature) {
			t.Errorf("%s tamper: err = %v, want ErrBadSignature", name, err)
		}
	}
}

func TestVerifyUnknownAuthority(t *testing.T) {
	a := authority()
	ts := NewTrustStore()
	s := a.Sign(samplePkg())
	if err := ts.Verify(s); !errors.Is(err, ErrUnknownAuthority) {
		t.Errorf("err = %v", err)
	}
	ts.Trust(a.Name, a.PublicKey())
	if err := ts.Verify(s); err != nil {
		t.Fatal(err)
	}
	ts.Revoke(a.Name)
	if err := ts.Verify(s); !errors.Is(err, ErrUnknownAuthority) {
		t.Errorf("after revoke: %v", err)
	}
}

func TestCostModel(t *testing.T) {
	// Weak 50 MHz ECU without crypto HW versus a 400 MHz master with it.
	weak := VerifyCost(100_000, 50, false)
	master := VerifyCost(100_000, 400, true)
	if weak <= master {
		t.Errorf("weak %v should cost far more than master %v", weak, master)
	}
	if ratio := float64(weak) / float64(master); ratio < 100 {
		t.Errorf("cost ratio = %.0f, want ≥ 100 (8x clock × 50x HW)", ratio)
	}
	// MAC is much cheaper than signature verification on the same ECU.
	mac := MACCost(100_000, 50, false)
	if mac >= weak {
		t.Errorf("MAC %v should be cheaper than verify %v", mac, weak)
	}
	// Cost grows with size.
	if VerifyCost(1<<20, 50, false) <= VerifyCost(1<<10, 50, false) {
		t.Error("verify cost not size-dependent")
	}
}

func TestMasterPoolVerifyFor(t *testing.T) {
	k := sim.NewKernel(1)
	a := authority()
	ts := NewTrustStore()
	ts.Trust(a.Name, a.PublicKey())
	masters := []*MasterECU{
		{Name: "cpm1", CPUMHz: 400, CryptoHW: true, Alive: true},
		{Name: "cpm2", CPUMHz: 400, CryptoHW: true, Alive: true},
	}
	pool := NewMasterPool(k, ts, masters)
	key := []byte("weak-ecu-psk-0123456789abcdef!!!")
	pool.Enroll("zone1", key)

	var fwd Forwarded
	var ferr error
	if err := pool.VerifyFor("zone1", a.Sign(samplePkg()), func(f Forwarded, err error) {
		fwd, ferr = f, err
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if ferr != nil {
		t.Fatal(ferr)
	}
	if pool.Verified != 1 {
		t.Errorf("verified = %d", pool.Verified)
	}
	// The weak ECU's check succeeds with the right key...
	if err := CheckForwarded(fwd, key); err != nil {
		t.Errorf("weak-ECU check: %v", err)
	}
	// ...fails with a wrong key and on a tampered image.
	if err := CheckForwarded(fwd, []byte("wrong")); err == nil {
		t.Error("wrong PSK accepted")
	}
	bad := fwd
	bad.Signed.Pkg.Image = []byte("evil")
	if err := CheckForwarded(bad, key); err == nil {
		t.Error("tampered forwarded package accepted")
	}
}

func TestMasterPoolRejectsBadPackage(t *testing.T) {
	k := sim.NewKernel(1)
	a := authority()
	ts := NewTrustStore() // authority NOT trusted
	pool := NewMasterPool(k, ts, []*MasterECU{{Name: "m", CPUMHz: 400, CryptoHW: true, Alive: true}})
	pool.Enroll("zone1", []byte("k"))
	var ferr error
	pool.VerifyFor("zone1", a.Sign(samplePkg()), func(_ Forwarded, err error) { ferr = err })
	k.Run()
	if ferr == nil || pool.Rejected != 1 {
		t.Errorf("err = %v rejected = %d", ferr, pool.Rejected)
	}
}

func TestMasterPoolFailover(t *testing.T) {
	k := sim.NewKernel(1)
	a := authority()
	ts := NewTrustStore()
	ts.Trust(a.Name, a.PublicKey())
	m1 := &MasterECU{Name: "m1", CPUMHz: 400, CryptoHW: true, Alive: true}
	m2 := &MasterECU{Name: "m2", CPUMHz: 100, CryptoHW: false, Alive: true}
	pool := NewMasterPool(k, ts, []*MasterECU{m1, m2})
	pool.Enroll("z", []byte("k"))

	// Primary dead: the pool must use m2 (no single point of failure).
	m1.Alive = false
	ok := false
	if err := pool.VerifyFor("z", a.Sign(samplePkg()), func(_ Forwarded, err error) {
		ok = err == nil
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !ok {
		t.Error("secondary master did not serve")
	}
	// Both dead: synchronous error.
	m2.Alive = false
	if err := pool.VerifyFor("z", a.Sign(samplePkg()), nil); !errors.Is(err, ErrNoMaster) {
		t.Errorf("err = %v, want ErrNoMaster", err)
	}
}

func TestMasterPoolNotEnrolled(t *testing.T) {
	k := sim.NewKernel(1)
	pool := NewMasterPool(k, NewTrustStore(), []*MasterECU{{Name: "m", Alive: true}})
	err := pool.VerifyFor("stranger", Signed{}, nil)
	if !errors.Is(err, ErrNotEnrolled) {
		t.Errorf("err = %v", err)
	}
}
