// Package analysis evaluates architectures for security using
// probabilistic reachability over an exploit graph, following the
// probabilistic-model-checking approach of Mundhenk et al. (DAC'15, the
// paper's reference [11]): components carry per-step exploit
// probabilities, attacks start at exposed entry points, and the analysis
// computes the probability that each asset is eventually compromised.
package analysis

import (
	"fmt"
	"math"
	"sort"
)

// Graph is an exploit graph: nodes are architecture elements (ECUs,
// networks, applications), edges are potential attack steps.
type Graph struct {
	nodes map[string]*Node
	edges map[string][]Edge // by source
}

// Node is one architecture element.
type Node struct {
	Name string
	// Entry marks externally reachable attack surfaces (telematics, OBD).
	Entry bool
}

// Edge is an attack step: compromising From enables an attempt on To,
// succeeding with probability P.
type Edge struct {
	From, To string
	// P is the per-attempt exploit success probability, from the
	// component's security evaluation.
	P float64
}

// NewGraph returns an empty exploit graph.
func NewGraph() *Graph {
	return &Graph{nodes: map[string]*Node{}, edges: map[string][]Edge{}}
}

// AddNode declares an element; entry marks it as attacker-reachable.
func (g *Graph) AddNode(name string, entry bool) {
	g.nodes[name] = &Node{Name: name, Entry: entry}
}

// AddEdge declares an attack step with success probability p ∈ [0, 1].
func (g *Graph) AddEdge(from, to string, p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("analysis: probability %v out of [0,1]", p)
	}
	if _, ok := g.nodes[from]; !ok {
		return fmt.Errorf("analysis: unknown node %q", from)
	}
	if _, ok := g.nodes[to]; !ok {
		return fmt.Errorf("analysis: unknown node %q", to)
	}
	g.edges[from] = append(g.edges[from], Edge{From: from, To: to, P: p})
	return nil
}

// Result maps each element to its eventual compromise probability.
type Result map[string]float64

// Exploitability computes, by monotone fixpoint iteration, the
// probability that each node is eventually compromised by an attacker who
// keeps trying every enabled step (the standard "until" reachability of
// probabilistic model checking, upper-bound semantics):
//
//	p(v) = 1 − ∏ over edges (u→v) of (1 − p(u)·P(u→v))
//
// Entry nodes start at probability 1. Iteration converges because p is
// monotone and bounded.
func (g *Graph) Exploitability() Result {
	p := Result{}
	for name, n := range g.nodes {
		if n.Entry {
			p[name] = 1
		} else {
			p[name] = 0
		}
	}
	// Build reverse adjacency.
	incoming := map[string][]Edge{}
	for _, es := range g.edges {
		for _, e := range es {
			incoming[e.To] = append(incoming[e.To], e)
		}
	}
	for iter := 0; iter < 10_000; iter++ {
		delta := 0.0
		for name, n := range g.nodes {
			if n.Entry {
				continue
			}
			prodSafe := 1.0
			for _, e := range incoming[name] {
				prodSafe *= 1 - p[e.From]*e.P
			}
			next := 1 - prodSafe
			if d := math.Abs(next - p[name]); d > delta {
				delta = d
			}
			p[name] = next
		}
		if delta < 1e-12 {
			break
		}
	}
	return p
}

// Of returns an asset's compromise probability from a result.
func (r Result) Of(asset string) float64 { return r[asset] }

// Ranking is one row of a sorted exploitability report.
type Ranking struct {
	Asset string
	P     float64
}

// Rank returns assets sorted most-exploitable first (ties by name).
func (r Result) Rank() []Ranking {
	out := make([]Ranking, 0, len(r))
	for a, p := range r {
		out = append(out, Ranking{Asset: a, P: p})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P != out[j].P {
			return out[i].P > out[j].P
		}
		return out[i].Asset < out[j].Asset
	})
	return out
}

// CutEffect re-evaluates the graph with one edge hardened to probability
// newP and returns the resulting exploitability of the asset — the
// what-if query used to compare architecture variants (E12).
func (g *Graph) CutEffect(from, to string, newP float64, asset string) (float64, error) {
	if newP < 0 || newP > 1 {
		return 0, fmt.Errorf("analysis: probability %v out of [0,1]", newP)
	}
	h := NewGraph()
	for name, n := range g.nodes {
		h.AddNode(name, n.Entry)
	}
	found := false
	for _, es := range g.edges {
		for _, e := range es {
			p := e.P
			if e.From == from && e.To == to {
				p = newP
				found = true
			}
			if err := h.AddEdge(e.From, e.To, p); err != nil {
				return 0, err
			}
		}
	}
	if !found {
		return 0, fmt.Errorf("analysis: edge %s→%s not in graph", from, to)
	}
	return h.Exploitability().Of(asset), nil
}
