package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"dynaplat/internal/sim"
)

// chainGraph builds entry → a → b with the given step probabilities.
func chainGraph(p1, p2 float64) *Graph {
	g := NewGraph()
	g.AddNode("telematics", true)
	g.AddNode("gateway", false)
	g.AddNode("brake", false)
	g.AddEdge("telematics", "gateway", p1)
	g.AddEdge("gateway", "brake", p2)
	return g
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestChainProbability(t *testing.T) {
	r := chainGraph(0.5, 0.2).Exploitability()
	if !almost(r.Of("telematics"), 1) {
		t.Errorf("entry = %v", r.Of("telematics"))
	}
	if !almost(r.Of("gateway"), 0.5) {
		t.Errorf("gateway = %v", r.Of("gateway"))
	}
	if !almost(r.Of("brake"), 0.1) {
		t.Errorf("brake = %v, want 0.1", r.Of("brake"))
	}
}

func TestParallelPathsCompound(t *testing.T) {
	// Two independent paths: 1-(1-0.1)(1-0.2) = 0.28.
	g := NewGraph()
	g.AddNode("obd", true)
	g.AddNode("cell", true)
	g.AddNode("ecu", false)
	g.AddEdge("obd", "ecu", 0.1)
	g.AddEdge("cell", "ecu", 0.2)
	r := g.Exploitability()
	if !almost(r.Of("ecu"), 0.28) {
		t.Errorf("ecu = %v, want 0.28", r.Of("ecu"))
	}
}

func TestUnreachableIsZero(t *testing.T) {
	g := NewGraph()
	g.AddNode("entry", true)
	g.AddNode("island", false)
	r := g.Exploitability()
	if r.Of("island") != 0 {
		t.Errorf("island = %v", r.Of("island"))
	}
}

func TestCycleConverges(t *testing.T) {
	g := NewGraph()
	g.AddNode("e", true)
	g.AddNode("a", false)
	g.AddNode("b", false)
	g.AddEdge("e", "a", 0.5)
	g.AddEdge("a", "b", 0.5)
	g.AddEdge("b", "a", 0.5) // cycle a↔b
	r := g.Exploitability()
	// Fixpoint: pa = 1-(1-0.5)(1-pb*0.5); pb = pa*0.5.
	pa := r.Of("a")
	pb := r.Of("b")
	if math.Abs(pa-(1-(1-0.5)*(1-pb*0.5))) > 1e-9 {
		t.Errorf("fixpoint violated: pa=%v pb=%v", pa, pb)
	}
	if pa < 0.5 || pa > 1 || pb < 0 || pb > 1 {
		t.Errorf("out of range: pa=%v pb=%v", pa, pb)
	}
}

func TestProbabilitiesInRangeProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		g := NewGraph()
		n := rng.Range(2, 10)
		for i := 0; i < n; i++ {
			g.AddNode(name(i), i == 0)
		}
		edges := rng.Range(1, 3*n)
		for i := 0; i < edges; i++ {
			from, to := rng.Intn(n), rng.Intn(n)
			if from == to {
				continue
			}
			g.AddEdge(name(from), name(to), rng.Float64())
		}
		r := g.Exploitability()
		for i := 0; i < n; i++ {
			p := r.Of(name(i))
			if p < 0 || p > 1+1e-9 || math.IsNaN(p) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func name(i int) string { return string(rune('a' + i)) }

// Hardening an edge must never increase exploitability (monotonicity).
func TestHardeningMonotone(t *testing.T) {
	g := chainGraph(0.5, 0.2)
	base := g.Exploitability().Of("brake")
	hardened, err := g.CutEffect("telematics", "gateway", 0.05, "brake")
	if err != nil {
		t.Fatal(err)
	}
	if hardened >= base {
		t.Errorf("hardening raised exploitability: %v → %v", base, hardened)
	}
	if !almost(hardened, 0.05*0.2) {
		t.Errorf("hardened = %v, want 0.01", hardened)
	}
	if _, err := g.CutEffect("ghost", "gateway", 0.1, "brake"); err == nil {
		t.Error("CutEffect accepted unknown edge")
	}
}

func TestRank(t *testing.T) {
	r := chainGraph(0.5, 0.2).Exploitability()
	rank := r.Rank()
	if len(rank) != 3 || rank[0].Asset != "telematics" || rank[2].Asset != "brake" {
		t.Errorf("rank = %+v", rank)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph()
	g.AddNode("a", true)
	if err := g.AddEdge("a", "ghost", 0.1); err == nil {
		t.Error("edge to unknown node accepted")
	}
	if err := g.AddEdge("ghost", "a", 0.1); err == nil {
		t.Error("edge from unknown node accepted")
	}
	g.AddNode("b", false)
	if err := g.AddEdge("a", "b", 1.5); err == nil {
		t.Error("probability > 1 accepted")
	}
	if err := g.AddEdge("a", "b", -0.1); err == nil {
		t.Error("negative probability accepted")
	}
}
