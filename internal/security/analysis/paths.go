package analysis

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Attack-path extraction: beyond the aggregate compromise probability,
// the security architect needs to know *which* chain of exploits is most
// likely, because that is the edge to harden first (the what-if query
// CutEffect answers). The most probable path maximizes the product of
// step probabilities, i.e. minimizes Σ −log p — a shortest-path problem.

// Path is one attack chain from an entry to the asset.
type Path struct {
	Nodes []string
	// P is the product of the steps' probabilities.
	P float64
}

func (p Path) String() string {
	s := ""
	for i, n := range p.Nodes {
		if i > 0 {
			s += " → "
		}
		s += n
	}
	return fmt.Sprintf("%s (p=%.4g)", s, p.P)
}

type pqItem struct {
	node  string
	dist  float64
	index int
}

type pathPQ []*pqItem

func (q pathPQ) Len() int           { return len(q) }
func (q pathPQ) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pathPQ) Swap(i, j int)      { q[i], q[j] = q[j], q[i]; q[i].index = i; q[j].index = j }
func (q *pathPQ) Push(x any)        { it := x.(*pqItem); it.index = len(*q); *q = append(*q, it) }
func (q *pathPQ) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// MostProbablePath returns the single most likely attack chain reaching
// the asset from any entry node, or ok=false when unreachable.
func (g *Graph) MostProbablePath(asset string) (Path, bool) {
	if _, exists := g.nodes[asset]; !exists {
		return Path{}, false
	}
	dist := map[string]float64{}
	prev := map[string]string{}
	pq := &pathPQ{}
	items := map[string]*pqItem{}

	names := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic tie-breaking
	for _, n := range names {
		d := math.Inf(1)
		if g.nodes[n].Entry {
			d = 0
		}
		dist[n] = d
		it := &pqItem{node: n, dist: d}
		items[n] = it
		heap.Push(pq, it)
	}
	for pq.Len() > 0 {
		u := heap.Pop(pq).(*pqItem)
		if math.IsInf(u.dist, 1) {
			break
		}
		if u.node == asset {
			break
		}
		for _, e := range g.edges[u.node] {
			if e.P <= 0 {
				continue
			}
			nd := u.dist - math.Log(e.P)
			if nd < dist[e.To]-1e-15 {
				dist[e.To] = nd
				prev[e.To] = u.node
				it := items[e.To]
				it.dist = nd
				heap.Fix(pq, it.index)
			}
		}
	}
	if math.IsInf(dist[asset], 1) {
		return Path{}, false
	}
	var nodes []string
	for at := asset; ; {
		nodes = append([]string{at}, nodes...)
		p, ok := prev[at]
		if !ok {
			break
		}
		at = p
	}
	return Path{Nodes: nodes, P: math.Exp(-dist[asset])}, true
}

// CriticalEdge returns the attack step on the most probable path whose
// hardening (to newP) lowers the asset's overall exploitability the most.
func (g *Graph) CriticalEdge(asset string, newP float64) (from, to string, reduction float64, err error) {
	path, ok := g.MostProbablePath(asset)
	if !ok {
		return "", "", 0, fmt.Errorf("analysis: %s unreachable", asset)
	}
	base := g.Exploitability().Of(asset)
	best := -1.0
	for i := 0; i+1 < len(path.Nodes); i++ {
		after, e := g.CutEffect(path.Nodes[i], path.Nodes[i+1], newP, asset)
		if e != nil {
			return "", "", 0, e
		}
		if d := base - after; d > best {
			best = d
			from, to = path.Nodes[i], path.Nodes[i+1]
		}
	}
	return from, to, best, nil
}
