package analysis

import (
	"strings"
	"testing"
)

func TestMostProbablePathChain(t *testing.T) {
	g := chainGraph(0.5, 0.2)
	p, ok := g.MostProbablePath("brake")
	if !ok {
		t.Fatal("unreachable")
	}
	want := []string{"telematics", "gateway", "brake"}
	if len(p.Nodes) != 3 {
		t.Fatalf("path = %v", p.Nodes)
	}
	for i := range want {
		if p.Nodes[i] != want[i] {
			t.Fatalf("path = %v", p.Nodes)
		}
	}
	if !almost(p.P, 0.1) {
		t.Errorf("P = %v, want 0.1", p.P)
	}
	if !strings.Contains(p.String(), "telematics → gateway → brake") {
		t.Errorf("String = %q", p.String())
	}
}

func TestMostProbablePathPicksBetterRoute(t *testing.T) {
	g := NewGraph()
	g.AddNode("entry", true)
	g.AddNode("weak", false)
	g.AddNode("strong", false)
	g.AddNode("asset", false)
	g.AddEdge("entry", "weak", 0.9)
	g.AddEdge("weak", "asset", 0.9) // product 0.81
	g.AddEdge("entry", "strong", 0.99)
	g.AddEdge("strong", "asset", 0.5) // product 0.495
	p, ok := g.MostProbablePath("asset")
	if !ok || p.Nodes[1] != "weak" {
		t.Errorf("path = %+v", p)
	}
	if !almost(p.P, 0.81) {
		t.Errorf("P = %v", p.P)
	}
}

func TestMostProbablePathUnreachable(t *testing.T) {
	g := NewGraph()
	g.AddNode("entry", true)
	g.AddNode("island", false)
	if _, ok := g.MostProbablePath("island"); ok {
		t.Error("island reachable")
	}
	if _, ok := g.MostProbablePath("ghost"); ok {
		t.Error("ghost node reachable")
	}
}

func TestMostProbablePathEntryIsAsset(t *testing.T) {
	g := NewGraph()
	g.AddNode("e", true)
	p, ok := g.MostProbablePath("e")
	if !ok || len(p.Nodes) != 1 || !almost(p.P, 1) {
		t.Errorf("p = %+v ok=%v", p, ok)
	}
}

func TestMostProbablePathZeroProbEdgeIgnored(t *testing.T) {
	g := NewGraph()
	g.AddNode("e", true)
	g.AddNode("a", false)
	g.AddEdge("e", "a", 0)
	if _, ok := g.MostProbablePath("a"); ok {
		t.Error("zero-probability edge traversed")
	}
}

func TestCriticalEdge(t *testing.T) {
	// Chain: the weakest hardening win is on the path; hardening any of
	// the two steps to 0.01 gives the same residual (product), so the
	// search returns the first maximal one deterministically.
	g := chainGraph(0.5, 0.2)
	from, to, reduction, err := g.CriticalEdge("brake", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if reduction <= 0 {
		t.Errorf("reduction = %v", reduction)
	}
	if from != "telematics" && from != "gateway" {
		t.Errorf("edge = %s→%s", from, to)
	}
	// Unreachable asset errors.
	g2 := NewGraph()
	g2.AddNode("e", true)
	g2.AddNode("x", false)
	if _, _, _, err := g2.CriticalEdge("x", 0.01); err == nil {
		t.Error("unreachable asset accepted")
	}
}

func TestCriticalEdgeParallelPaths(t *testing.T) {
	// With a dominant path and a minor one, the critical edge must sit
	// on the dominant path.
	g := NewGraph()
	g.AddNode("e", true)
	g.AddNode("big", false)
	g.AddNode("small", false)
	g.AddNode("asset", false)
	g.AddEdge("e", "big", 0.8)
	g.AddEdge("big", "asset", 0.8)
	g.AddEdge("e", "small", 0.05)
	g.AddEdge("small", "asset", 0.05)
	from, to, _, err := g.CriticalEdge("asset", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if from == "small" || to == "small" {
		t.Errorf("critical edge on minor path: %s→%s", from, to)
	}
}
