// Package auth implements the paper's Section 4.2 authentication and
// authorization for dynamic service bindings: a lightweight, symmetric-key
// session scheme in the spirit of the authentication framework of
// Mundhenk et al. (reference [10]), driven by the access-control matrix
// extracted from the system model.
//
// A client first authenticates with the broker and requests a ticket for
// an interface; the broker checks the model-derived matrix and issues an
// HMAC ticket with a virtual-time expiry. Providers (represented here by
// the middleware's Authorizer hook) accept only valid, unexpired tickets.
package auth

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"

	"dynaplat/internal/model"
	"dynaplat/internal/sim"
)

// Ticket authorizes one client for one interface until Expiry.
type Ticket struct {
	Client string
	Iface  string
	Expiry sim.Time
	Tag    []byte
}

// Errors returned by the broker and verifier.
var (
	ErrDenied  = errors.New("auth: access denied by policy")
	ErrExpired = errors.New("auth: ticket expired")
	ErrForged  = errors.New("auth: ticket verification failed")
)

// Broker issues tickets according to the access matrix.
type Broker struct {
	k      *sim.Kernel
	matrix *model.AccessMatrix
	key    []byte
	// TTL is the ticket lifetime.
	TTL sim.Duration

	// Issued and Denied count broker decisions.
	Issued, Denied int64
}

// NewBroker creates a broker with the model-derived matrix and a vehicle
// master key.
func NewBroker(k *sim.Kernel, matrix *model.AccessMatrix, key []byte, ttl sim.Duration) *Broker {
	if ttl <= 0 {
		ttl = 10 * sim.Second
	}
	return &Broker{k: k, matrix: matrix, key: append([]byte(nil), key...), TTL: ttl}
}

// Matrix exposes the broker's policy for runtime adjustment
// (Section 4.2: permissions "loaded and adjusted at runtime").
func (b *Broker) Matrix() *model.AccessMatrix { return b.matrix }

func (b *Broker) sign(client, iface string, expiry sim.Time) []byte {
	mac := hmac.New(sha256.New, b.key)
	mac.Write([]byte(client))
	mac.Write([]byte{0})
	mac.Write([]byte(iface))
	var e [8]byte
	binary.BigEndian.PutUint64(e[:], uint64(expiry))
	mac.Write(e[:])
	return mac.Sum(nil)
}

// Request issues a ticket, or ErrDenied when the policy forbids the
// binding.
func (b *Broker) Request(client, iface string) (Ticket, error) {
	if !b.matrix.Allowed(client, iface) {
		b.Denied++
		return Ticket{}, ErrDenied
	}
	b.Issued++
	expiry := b.k.Now().Add(b.TTL)
	return Ticket{
		Client: client, Iface: iface, Expiry: expiry,
		Tag: b.sign(client, iface, expiry),
	}, nil
}

// Verify checks a ticket's integrity and freshness against the broker
// key (providers share it in this symmetric scheme).
func (b *Broker) Verify(t Ticket) error {
	if !hmac.Equal(t.Tag, b.sign(t.Client, t.Iface, t.Expiry)) {
		return ErrForged
	}
	if b.k.Now() > t.Expiry {
		return ErrExpired
	}
	return nil
}

// Authorizer adapts the broker to the middleware's binding hook: each
// Authorize call requests and verifies a ticket, caching it until expiry
// (the common fast path).
type Authorizer struct {
	broker *Broker
	cache  map[[2]string]Ticket
	// CacheHits counts authorizations served without broker round trips.
	CacheHits int64
}

// NewAuthorizer wraps a broker for use as soa.Authorizer.
func NewAuthorizer(b *Broker) *Authorizer {
	return &Authorizer{broker: b, cache: map[[2]string]Ticket{}}
}

// Authorize implements the middleware hook.
func (a *Authorizer) Authorize(client, iface string) bool {
	key := [2]string{client, iface}
	if t, ok := a.cache[key]; ok && a.broker.Verify(t) == nil {
		a.CacheHits++
		return true
	}
	t, err := a.broker.Request(client, iface)
	if err != nil {
		return false
	}
	if err := a.broker.Verify(t); err != nil {
		return false
	}
	a.cache[key] = t
	return true
}

// Invalidate drops a client's cached tickets (after revocation).
func (a *Authorizer) Invalidate(client string) {
	for k := range a.cache {
		if k[0] == client {
			delete(a.cache, k)
		}
	}
}

// TicketCost returns the virtual time one ticket issue+verify costs at
// the given clock (two HMAC-SHA256 over ~100 bytes — the "efficient
// manner" of reference [10], versus a full asymmetric handshake).
func TicketCost(cpuMHz int, cryptoHW bool) sim.Duration {
	cycles := int64(2 * (2000 + 100*16))
	if cryptoHW {
		cycles /= 50
	}
	if cpuMHz <= 0 {
		cpuMHz = 1
	}
	return sim.Duration(cycles * 1000 / int64(cpuMHz))
}
