package auth

import (
	"errors"
	"testing"

	"dynaplat/internal/model"
	"dynaplat/internal/sim"
)

func matrix() *model.AccessMatrix {
	sys := model.MustParse(`
system T
ecu E cpu=100MHz mem=1MB mmu os=rtos
app Brake kind=da asil=D period=10ms wcet=1ms mem=1KB on=E
app Dash kind=nda mem=1KB on=E
app Media kind=nda mem=1KB on=E
iface BrakeStatus owner=Brake paradigm=event payload=8B period=10ms
bind Dash -> BrakeStatus
`)
	return model.ExtractAccessMatrix(sys)
}

func TestBrokerIssuesPerPolicy(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewBroker(k, matrix(), []byte("vehicle-master-key"), sim.Second)
	tk, err := b.Request("Dash", "BrakeStatus")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(tk); err != nil {
		t.Errorf("fresh ticket invalid: %v", err)
	}
	if _, err := b.Request("Media", "BrakeStatus"); !errors.Is(err, ErrDenied) {
		t.Errorf("undeclared binding: %v", err)
	}
	if b.Issued != 1 || b.Denied != 1 {
		t.Errorf("issued=%d denied=%d", b.Issued, b.Denied)
	}
}

func TestTicketExpiry(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewBroker(k, matrix(), []byte("key"), 100*sim.Millisecond)
	tk, err := b.Request("Dash", "BrakeStatus")
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(sim.Time(50 * sim.Millisecond))
	if err := b.Verify(tk); err != nil {
		t.Errorf("mid-TTL: %v", err)
	}
	k.RunUntil(sim.Time(150 * sim.Millisecond))
	if err := b.Verify(tk); !errors.Is(err, ErrExpired) {
		t.Errorf("post-TTL: %v", err)
	}
}

func TestTicketForgery(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewBroker(k, matrix(), []byte("key"), sim.Second)
	tk, _ := b.Request("Dash", "BrakeStatus")

	forged := tk
	forged.Client = "Media" // steal the ticket
	if err := b.Verify(forged); !errors.Is(err, ErrForged) {
		t.Errorf("client swap: %v", err)
	}
	forged2 := tk
	forged2.Expiry = tk.Expiry.Add(sim.Duration(1) * sim.Second) // extend lifetime
	if err := b.Verify(forged2); !errors.Is(err, ErrForged) {
		t.Errorf("expiry extension: %v", err)
	}
	forged3 := tk
	forged3.Tag = append([]byte(nil), tk.Tag...)
	forged3.Tag[0] ^= 1
	if err := b.Verify(forged3); !errors.Is(err, ErrForged) {
		t.Errorf("tag flip: %v", err)
	}
	// Different broker key → tickets don't transfer.
	b2 := NewBroker(k, matrix(), []byte("other-key"), sim.Second)
	if err := b2.Verify(tk); !errors.Is(err, ErrForged) {
		t.Errorf("cross-broker: %v", err)
	}
}

func TestAuthorizerCaching(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewBroker(k, matrix(), []byte("key"), sim.Second)
	a := NewAuthorizer(b)
	if !a.Authorize("Dash", "BrakeStatus") {
		t.Fatal("authorized binding denied")
	}
	for i := 0; i < 9; i++ {
		if !a.Authorize("Dash", "BrakeStatus") {
			t.Fatal("cached authorization denied")
		}
	}
	if b.Issued != 1 {
		t.Errorf("issued = %d, want 1 (cache)", b.Issued)
	}
	if a.CacheHits != 9 {
		t.Errorf("cache hits = %d", a.CacheHits)
	}
	if a.Authorize("Media", "BrakeStatus") {
		t.Error("unauthorized binding allowed")
	}
}

func TestAuthorizerExpiryRefresh(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewBroker(k, matrix(), []byte("key"), 10*sim.Millisecond)
	a := NewAuthorizer(b)
	a.Authorize("Dash", "BrakeStatus")
	k.RunUntil(sim.Time(50 * sim.Millisecond))
	if !a.Authorize("Dash", "BrakeStatus") {
		t.Fatal("re-authorization after expiry failed")
	}
	if b.Issued != 2 {
		t.Errorf("issued = %d, want 2 (expired ticket refreshed)", b.Issued)
	}
}

func TestRuntimeRevocation(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewBroker(k, matrix(), []byte("key"), sim.Second)
	a := NewAuthorizer(b)
	if !a.Authorize("Dash", "BrakeStatus") {
		t.Fatal("initial authorization failed")
	}
	// Runtime policy change: revoke Dash.
	b.Matrix().Revoke("Dash", "BrakeStatus")
	a.Invalidate("Dash")
	if a.Authorize("Dash", "BrakeStatus") {
		t.Error("revoked binding still allowed")
	}
	// And grant Media at runtime.
	b.Matrix().Allow("Media", "BrakeStatus")
	if !a.Authorize("Media", "BrakeStatus") {
		t.Error("runtime grant not honored")
	}
}

func TestWildcardClient(t *testing.T) {
	k := sim.NewKernel(1)
	m := matrix()
	m.GrantWildcard("Logger")
	b := NewBroker(k, m, []byte("key"), sim.Second)
	a := NewAuthorizer(b)
	if !a.Authorize("Logger", "BrakeStatus") {
		t.Error("wildcard client denied")
	}
}

func TestTicketCost(t *testing.T) {
	weak := TicketCost(50, false)
	strong := TicketCost(400, true)
	if weak <= strong {
		t.Errorf("weak %v should exceed strong %v", weak, strong)
	}
	// Even on the weak ECU the symmetric scheme stays under 200µs —
	// the "lightweight" property of reference [10].
	if weak > 200*sim.Microsecond {
		t.Errorf("weak-ECU ticket cost %v too high for a lightweight scheme", weak)
	}
}
