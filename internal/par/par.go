// Package par is the repo's one approved worker-pool shape: a bounded
// pool of goroutines claiming indices off an atomic counter, with panic
// containment. Every simulation layer is single-threaded per kernel;
// concurrency lives only in harnesses (internal/experiments fanning
// experiments out, internal/fleet sharding vehicles) and both reuse this
// pool so that panic handling, work claiming and shutdown exist exactly
// once.
//
// The pool preserves the byte-identity contract the harnesses rely on:
// fn(i) must be a pure function of i (each call builds its own seeded
// kernel), results are written to caller-owned slots indexed by i, and
// neither the worker count nor goroutine interleaving can influence any
// result.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// PanicError reports that a worker's fn(i) panicked. The pool recovers
// the panic in the worker so sibling workers drain instead of crashing
// the process, records which index failed, and surfaces the panic as an
// error after every worker has stopped.
type PanicError struct {
	// Index is the work item whose fn panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: worker panicked on item %d: %v", e.Index, e.Value)
}

// ForEach runs fn(i) for every i in [0, n) across a pool of workers.
// workers <= 0 means GOMAXPROCS; the pool never exceeds n goroutines and
// workers <= 1 runs serially on the calling goroutine (still with panic
// containment, so callers handle one shape).
//
// If any fn panics, the panic is recovered in the worker, remaining
// unclaimed work is abandoned (in-flight items finish), and after all
// workers return ForEach reports the lowest-index panic as a
// *PanicError — the same error regardless of interleaving when a single
// item is at fault. A nil return means every item ran to completion.
func ForEach(n, workers int, fn func(int)) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		first  *PanicError
	)
	next.Store(-1)
	record := func(i int, v any) {
		stack := make([]byte, 64<<10)
		stack = stack[:runtime.Stack(stack, false)]
		mu.Lock()
		if first == nil || i < first.Index {
			first = &PanicError{Index: i, Value: v, Stack: stack}
		}
		mu.Unlock()
		failed.Store(true)
	}
	work := func() {
		for {
			i := int(next.Add(1))
			if i >= n || failed.Load() {
				return
			}
			func() {
				defer func() {
					if v := recover(); v != nil {
						record(i, v)
					}
				}()
				fn(i)
			}()
		}
	}

	if workers <= 1 {
		work()
		if first != nil {
			return first
		}
		return nil
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
	if first != nil {
		return first
	}
	return nil
}
