package par

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryItem(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 3, 64} {
		n := 100
		hits := make([]atomic.Int32, n)
		if err := ForEach(n, workers, func(i int) { hits[i].Add(1) }); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(0, 4, func(int) { t.Fatal("fn called") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachPanicContained(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := ForEach(50, workers, func(i int) {
			if i == 7 {
				panic("boom at seven")
			}
			ran.Add(1)
		})
		pe, ok := err.(*PanicError)
		if !ok {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Index != 7 {
			t.Errorf("workers=%d: failing index = %d, want 7", workers, pe.Index)
		}
		if pe.Value != "boom at seven" {
			t.Errorf("workers=%d: panic value = %v", workers, pe.Value)
		}
		if !strings.Contains(pe.Error(), "item 7") || !strings.Contains(pe.Error(), "boom at seven") {
			t.Errorf("workers=%d: error text %q lacks index or value", workers, pe.Error())
		}
		if len(pe.Stack) == 0 {
			t.Errorf("workers=%d: no stack captured", workers)
		}
	}
}

// TestForEachLowestIndexWins: with several panicking items the reported
// index must be the lowest, independent of goroutine interleaving.
func TestForEachLowestIndexWins(t *testing.T) {
	for round := 0; round < 20; round++ {
		err := ForEach(40, 8, func(i int) {
			if i%10 == 3 { // 3, 13, 23, 33 all panic
				panic(i)
			}
		})
		pe, ok := err.(*PanicError)
		if !ok {
			t.Fatalf("err = %v", err)
		}
		// Workers claim indices in order, so index 3 is always claimed —
		// and with the lowest-index rule it must always be the one reported.
		if pe.Index != 3 {
			t.Fatalf("round %d: index = %d, want 3", round, pe.Index)
		}
	}
}

// TestForEachAbandonsAfterPanic: a panic stops further claims, so a
// panicking item near the front of a long run leaves most work undone
// rather than burning the pool on a doomed batch.
func TestForEachAbandonsAfterPanic(t *testing.T) {
	var ran atomic.Int32
	err := ForEach(1_000_000, 2, func(i int) {
		if i == 0 {
			panic("early")
		}
		ran.Add(1)
	})
	if err == nil {
		t.Fatal("no error")
	}
	if n := ran.Load(); n > 1000 {
		t.Errorf("%d items ran after the panic; claims were not abandoned", n)
	}
}
