// Package clocksync simulates in-vehicle time synchronization in the
// style of IEEE 802.1AS (gPTP): every ECU has a local clock with offset
// and drift; a grandmaster distributes its time over a simulated network;
// slaves measure the path delay with a request/response exchange and
// discipline their clocks each sync round.
//
// The paper needs this twice: TSN's time-aware gates assume a
// synchronized network (Section 5.3), and Section 3.2 argues that a
// centrally synchronized update switch "requires high accuracy clock
// synchronization" — this package quantifies exactly how much residual
// error such synchronization leaves (used by experiment E6's discussion).
package clocksync

import (
	"fmt"

	"dynaplat/internal/network"
	"dynaplat/internal/sim"
)

// Clock is one ECU's local clock. Local time advances at a slightly
// wrong rate (drift, in parts per billion) from a wrong starting offset.
type Clock struct {
	// OffsetNs is the current correction-inclusive offset from perfect
	// time at perfect time zero.
	offsetNs float64
	// driftPPB is the frequency error in parts per billion.
	driftPPB float64
}

// NewClock creates a clock with the given initial offset and drift.
func NewClock(offset sim.Duration, driftPPB float64) *Clock {
	return &Clock{offsetNs: float64(offset), driftPPB: driftPPB}
}

// Read returns the local time at perfect (simulation) time now.
func (c *Clock) Read(now sim.Time) sim.Time {
	return sim.Time(float64(now) + c.offsetNs + c.driftPPB*1e-9*float64(now))
}

// Error returns local-minus-perfect time at now.
func (c *Clock) Error(now sim.Time) sim.Duration {
	return c.Read(now).Sub(now)
}

// Step applies an offset correction (negative delta slows the clock's
// reading back).
func (c *Clock) Step(delta sim.Duration) { c.offsetNs -= float64(delta) }

// Config tunes the protocol.
type Config struct {
	// SyncPeriod is the grandmaster's announcement interval.
	SyncPeriod sim.Duration
	// MsgBytes is the sync/delay message size on the wire.
	MsgBytes int
	// BaseID is the technology message-ID block used by the protocol.
	BaseID uint32
}

// DefaultConfig returns the 802.1AS-like 125 ms sync interval.
func DefaultConfig() Config {
	return Config{SyncPeriod: 125 * sim.Millisecond, MsgBytes: 44, BaseID: 0xCC00}
}

// Domain is one synchronization domain: a grandmaster station and its
// slaves, all attached to one network.
type Domain struct {
	k      *sim.Kernel
	net    network.Network
	cfg    Config
	master string
	slaves map[string]*slave
	ticker *sim.Ticker

	// Rounds counts completed sync rounds.
	Rounds int64
}

type slave struct {
	name  string
	clock *Clock
	// pathDelay is the latest measured one-way delay estimate.
	pathDelay sim.Duration
	reqSent   sim.Time
	// ErrAfterSync samples |clock error| right after each correction.
	ErrAfterSync sim.Sample
}

// NewDomain creates a sync domain with the named grandmaster station.
// The grandmaster's own clock is the time reference (error 0).
func NewDomain(k *sim.Kernel, net network.Network, master string, cfg Config) *Domain {
	d := &Domain{k: k, net: net, cfg: cfg, master: master, slaves: map[string]*slave{}}
	net.Attach(master, d.onMasterRx)
	return d
}

// AddSlave registers a station's clock for synchronization.
func (d *Domain) AddSlave(name string, clock *Clock) error {
	if name == d.master {
		return fmt.Errorf("clocksync: %s is the grandmaster", name)
	}
	if _, dup := d.slaves[name]; dup {
		return fmt.Errorf("clocksync: slave %s already registered", name)
	}
	s := &slave{name: name, clock: clock}
	d.slaves[name] = s
	d.net.Attach(name, func(del network.Delivery) { d.onSlaveRx(s, del) })
	return nil
}

// SlaveError returns a slave's clock error at the current instant.
func (d *Domain) SlaveError(name string) (sim.Duration, error) {
	s, ok := d.slaves[name]
	if !ok {
		return 0, fmt.Errorf("clocksync: unknown slave %s", name)
	}
	return s.clock.Error(d.k.Now()), nil
}

// ErrAfterSync returns the post-correction error sample of a slave.
func (d *Domain) ErrAfterSync(name string) *sim.Sample {
	if s, ok := d.slaves[name]; ok {
		return &s.ErrAfterSync
	}
	return &sim.Sample{}
}

// Start begins periodic sync rounds.
func (d *Domain) Start() {
	d.ticker = d.k.Every(d.k.Now().Add(d.cfg.SyncPeriod), d.cfg.SyncPeriod, d.round)
}

// Stop halts synchronization.
func (d *Domain) Stop() {
	if d.ticker != nil {
		d.ticker.Stop()
	}
}

// Protocol message kinds carried in Payload.
type msgKind int

const (
	kindSync msgKind = iota
	kindDelayReq
	kindDelayResp
)

type syncMsg struct {
	kind msgKind
	// t1 is the master timestamp at sync transmission, or at delay-resp
	// reception of the request.
	t1   sim.Time
	from string
}

// round broadcasts the master time and triggers delay measurements.
func (d *Domain) round() {
	d.Rounds++
	d.net.Send(network.Message{
		ID: d.cfg.BaseID, Src: d.master, Class: network.ClassControl,
		Bytes: d.cfg.MsgBytes, Payload: syncMsg{kind: kindSync, t1: d.k.Now()},
	})
}

func (d *Domain) onMasterRx(del network.Delivery) {
	m, ok := del.Msg.Payload.(syncMsg)
	if !ok || m.kind != kindDelayReq {
		return
	}
	// Respond with the master receive timestamp.
	d.net.Send(network.Message{
		ID: d.cfg.BaseID + 1, Src: d.master, Dst: m.from, Class: network.ClassControl,
		Bytes:   d.cfg.MsgBytes,
		Payload: syncMsg{kind: kindDelayResp, t1: d.k.Now(), from: m.from},
	})
}

func (d *Domain) onSlaveRx(s *slave, del network.Delivery) {
	m, ok := del.Msg.Payload.(syncMsg)
	if !ok {
		return
	}
	now := d.k.Now()
	switch m.kind {
	case kindSync:
		// Offset = localRx − (masterTx + pathDelay).
		localRx := s.clock.Read(now)
		masterEstimate := m.t1.Add(s.pathDelay)
		offset := localRx.Sub(masterEstimate)
		s.clock.Step(offset)
		err := s.clock.Error(now)
		if err < 0 {
			err = -err
		}
		s.ErrAfterSync.AddDuration(err)
		// Kick off a path-delay measurement for the next round.
		s.reqSent = now
		d.net.Send(network.Message{
			ID: d.cfg.BaseID + 2, Src: s.name, Dst: d.master, Class: network.ClassControl,
			Bytes:   d.cfg.MsgBytes,
			Payload: syncMsg{kind: kindDelayReq, from: s.name},
		})
	case kindDelayResp:
		// Round trip = now − reqSent (perfect-time RTT is what the wire
		// produced; the slave actually measures in local time, but over
		// one RTT the drift contribution is negligible and modeled away).
		rtt := now.Sub(s.reqSent)
		s.pathDelay = rtt / 2
	}
}
