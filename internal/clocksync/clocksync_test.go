package clocksync

import (
	"testing"

	"dynaplat/internal/sim"
	"dynaplat/internal/tsn"
)

func ms(n int64) sim.Duration { return sim.Duration(n) * sim.Millisecond }

func TestClockModel(t *testing.T) {
	// +1ms offset, +100ppm drift.
	c := NewClock(ms(1), 100_000)
	if e := c.Error(0); e != ms(1) {
		t.Errorf("error at 0 = %v, want 1ms", e)
	}
	// After 10 virtual seconds, drift adds 1ms.
	at := sim.Time(10 * sim.Second)
	if e := c.Error(at); e < ms(1)+900*sim.Microsecond || e > ms(1)+1100*sim.Microsecond {
		t.Errorf("error at 10s = %v, want ~2ms", e)
	}
	c.Step(c.Error(at))
	if e := c.Error(at); e != 0 {
		t.Errorf("after step error = %v", e)
	}
}

func newDomain(t *testing.T) (*sim.Kernel, *Domain) {
	t.Helper()
	k := sim.NewKernel(1)
	net := tsn.New(k, tsn.DefaultConfig("bb"))
	d := NewDomain(k, net, "gm", DefaultConfig())
	return k, d
}

func TestSyncDisciplinesDriftingClocks(t *testing.T) {
	k, d := newDomain(t)
	// Badly wrong slaves: 5ms initial offset, ±50ppm drift.
	c1 := NewClock(5*ms(1), 50_000)
	c2 := NewClock(-3*ms(1), -50_000)
	if err := d.AddSlave("zone1", c1); err != nil {
		t.Fatal(err)
	}
	if err := d.AddSlave("zone2", c2); err != nil {
		t.Fatal(err)
	}
	d.Start()
	k.RunUntil(sim.Time(5 * sim.Second))
	if d.Rounds < 35 {
		t.Fatalf("rounds = %d", d.Rounds)
	}
	for _, name := range []string{"zone1", "zone2"} {
		e, err := d.SlaveError(name)
		if err != nil {
			t.Fatal(err)
		}
		if e < 0 {
			e = -e
		}
		// Between syncs a 50ppm clock drifts 6.25us per 125ms round; the
		// steady-state error must be in that order, nowhere near the
		// initial milliseconds.
		if e > 100*sim.Microsecond {
			t.Errorf("%s residual error = %v", name, e)
		}
	}
	// Post-correction errors must shrink dramatically after round one.
	s := d.ErrAfterSync("zone1")
	if s.Count() < 30 {
		t.Fatalf("samples = %d", s.Count())
	}
	if late := s.Percentile(50); late > float64(50*sim.Microsecond) {
		t.Errorf("median post-sync error = %v", sim.Duration(late))
	}
}

func TestUnsyncedClockKeepsDrifting(t *testing.T) {
	k, d := newDomain(t)
	c := NewClock(0, 100_000)
	d.AddSlave("zone1", c)
	// Never call Start.
	k.RunUntil(sim.Time(10 * sim.Second))
	e, _ := d.SlaveError("zone1")
	if e < 900*sim.Microsecond {
		t.Errorf("unsynced error = %v, want ~1ms of drift", e)
	}
}

func TestStopHaltsRounds(t *testing.T) {
	k, d := newDomain(t)
	d.AddSlave("zone1", NewClock(ms(1), 0))
	d.Start()
	k.RunUntil(sim.Time(sim.Second))
	d.Stop()
	r := d.Rounds
	k.RunUntil(sim.Time(2 * sim.Second))
	if d.Rounds != r {
		t.Error("rounds grew after Stop")
	}
}

func TestValidation(t *testing.T) {
	_, d := newDomain(t)
	if err := d.AddSlave("gm", NewClock(0, 0)); err == nil {
		t.Error("grandmaster registered as slave")
	}
	d.AddSlave("z", NewClock(0, 0))
	if err := d.AddSlave("z", NewClock(0, 0)); err == nil {
		t.Error("duplicate slave accepted")
	}
	if _, err := d.SlaveError("ghost"); err == nil {
		t.Error("unknown slave accepted")
	}
	if s := d.ErrAfterSync("ghost"); s.Count() != 0 {
		t.Error("ghost sample non-empty")
	}
}
