package dse

import (
	"testing"
	"testing/quick"

	"dynaplat/internal/sim"
	"dynaplat/internal/workload"
)

func TestParetoFrontSmallExhaustive(t *testing.T) {
	sys := smallSystem()
	front := ParetoFront(sys, 0, 1)
	if len(front) == 0 {
		t.Fatal("empty front")
	}
	// Mutual non-domination.
	for i := range front {
		for j := range front {
			if i != j && dominates(front[i].Cost, front[j].Cost) {
				t.Errorf("front[%d] dominates front[%d]", i, j)
			}
		}
	}
	// Sorted by ECU cost.
	for i := 1; i < len(front); i++ {
		if front[i].Cost.ECUCost < front[i-1].Cost.ECUCost {
			t.Error("front not sorted by cost")
		}
	}
	// The scalarized optimum must be weakly dominated by some front point
	// in each objective direction; in particular the min-ECU-cost point
	// on the front cannot cost more than the scalar optimum's ECU cost.
	opt, err := Exhaustive(sys, DefaultWeights(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if front[0].Cost.ECUCost > opt.Cost.ECUCost {
		t.Errorf("front min ECU cost %d > scalar optimum %d",
			front[0].Cost.ECUCost, opt.Cost.ECUCost)
	}
}

func TestParetoFrontSamplingFallback(t *testing.T) {
	rng := sim.NewRNG(5)
	big := workload.Fleet(rng, 5, 20, 2, 2, 1.0)
	front := ParetoFront(big, 2000, 7)
	if len(front) == 0 {
		t.Fatal("sampling found nothing feasible")
	}
	for i := range front {
		for j := range front {
			if i != j && dominates(front[i].Cost, front[j].Cost) {
				t.Error("front contains dominated point")
			}
		}
	}
	// Deterministic per seed.
	front2 := ParetoFront(big, 2000, 7)
	if len(front) != len(front2) {
		t.Errorf("sampling not deterministic: %d vs %d points", len(front), len(front2))
	}
}

func TestDominates(t *testing.T) {
	a := Cost{ECUCost: 10, MaxUtil: 0.5, CrossMbps: 1}
	b := Cost{ECUCost: 20, MaxUtil: 0.5, CrossMbps: 1}
	if !dominates(a, b) || dominates(b, a) {
		t.Error("simple domination wrong")
	}
	c := Cost{ECUCost: 5, MaxUtil: 0.9, CrossMbps: 1}
	if dominates(a, c) || dominates(c, a) {
		t.Error("trade-off points must not dominate each other")
	}
	if dominates(a, a) {
		t.Error("point dominates itself")
	}
}

func TestInsertNonDominatedProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		var front []ParetoPoint
		for i := 0; i < 50; i++ {
			p := ParetoPoint{Cost: Cost{
				ECUCost:   rng.Range(1, 10) * 10,
				MaxUtil:   float64(rng.Range(1, 10)) / 10,
				CrossMbps: float64(rng.Range(0, 5)),
			}}
			front = insertNonDominated(front, p)
		}
		for i := range front {
			for j := range front {
				if i != j && dominates(front[i].Cost, front[j].Cost) {
					return false
				}
			}
		}
		return len(front) >= 1
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}
