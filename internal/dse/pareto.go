package dse

import (
	"sort"

	"dynaplat/internal/model"
	"dynaplat/internal/sim"
)

// Multi-objective exploration: instead of collapsing ECU cost, peak
// utilization and cross-ECU traffic into one scalar, return the Pareto
// front over (ECUCost, MaxUtil, CrossMbps). Reference [14] (Reimann's
// dissertation, which the paper builds on) frames automotive DSE exactly
// as multi-objective optimization; the front gives the E/E architect the
// trade-off curve rather than a single point.

// ParetoPoint is one non-dominated placement.
type ParetoPoint struct {
	Placement map[string]string
	Cost      Cost
}

// dominates reports whether a is at least as good as b in every
// objective and strictly better in one.
func dominates(a, b Cost) bool {
	if a.ECUCost > b.ECUCost || a.MaxUtil > b.MaxUtil || a.CrossMbps > b.CrossMbps {
		return false
	}
	return a.ECUCost < b.ECUCost || a.MaxUtil < b.MaxUtil || a.CrossMbps < b.CrossMbps
}

// insertNonDominated maintains the front under insertion.
func insertNonDominated(front []ParetoPoint, p ParetoPoint) []ParetoPoint {
	for _, q := range front {
		if dominates(q.Cost, p.Cost) || q.Cost == p.Cost {
			return front // dominated or duplicate
		}
	}
	kept := front[:0]
	for _, q := range front {
		if !dominates(p.Cost, q.Cost) {
			kept = append(kept, q)
		}
	}
	return append(kept, p)
}

// ParetoFront explores candidate placements and returns the non-dominated
// set, sorted by ascending ECU cost (ties by utilization). For small
// spaces it enumerates exhaustively; beyond budget evaluations it falls
// back to seeded random sampling plus the greedy solution.
func ParetoFront(sys *model.System, budget int64, seed uint64) []ParetoPoint {
	if budget <= 0 {
		budget = 200_000
	}
	w := DefaultWeights()
	var front []ParetoPoint
	evaluated := int64(0)

	apps := append([]*model.App(nil), sys.Apps...)
	sort.Slice(apps, func(i, j int) bool { return apps[i].Name < apps[j].Name })
	work := sys.Clone()

	space := int64(1)
	exhaustiveOK := true
	for _, a := range apps {
		n := int64(len(candidates(work, work.App(a.Name))))
		if space > budget/n+1 {
			exhaustiveOK = false
			break
		}
		space *= n
	}

	consider := func() {
		evaluated++
		c, ok := Evaluate(work, w)
		if !ok {
			return
		}
		front = insertNonDominated(front, ParetoPoint{
			Placement: clonePlacement(work.Placement), Cost: c,
		})
	}

	if exhaustiveOK && space <= budget {
		var recurse func(i int)
		recurse = func(i int) {
			if i == len(apps) {
				consider()
				return
			}
			for _, ecu := range candidates(work, work.App(apps[i].Name)) {
				work.Placement[apps[i].Name] = ecu
				recurse(i + 1)
			}
		}
		recurse(0)
	} else {
		// Seed with greedy, then random sampling.
		if g := Greedy(sys, w); g.Feasible {
			work.Placement = clonePlacement(g.Placement)
			consider()
		}
		rng := sim.NewRNG(seed)
		for evaluated < budget {
			for _, a := range apps {
				cs := candidates(work, work.App(a.Name))
				work.Placement[a.Name] = cs[rng.Intn(len(cs))]
			}
			consider()
		}
	}

	sort.Slice(front, func(i, j int) bool {
		if front[i].Cost.ECUCost != front[j].Cost.ECUCost {
			return front[i].Cost.ECUCost < front[j].Cost.ECUCost
		}
		if front[i].Cost.MaxUtil != front[j].Cost.MaxUtil {
			return front[i].Cost.MaxUtil < front[j].Cost.MaxUtil
		}
		return front[i].Cost.CrossMbps < front[j].Cost.CrossMbps
	})
	return front
}
