package dse

// Ablation A5 (DESIGN.md §4): the simulated-annealing cooling schedule.
// Faster cooling converges quicker but risks worse optima; the reported
// cost metric exposes the solution-quality side.

import (
	"fmt"
	"testing"

	"dynaplat/internal/sim"
	"dynaplat/internal/workload"
)

func BenchmarkA5Cooling(b *testing.B) {
	sys := workload.Fleet(sim.NewRNG(77), 5, 16, 2, 2, 1.2)
	w := DefaultWeights()
	for _, cooling := range []float64{0.80, 0.95, 0.99} {
		cooling := cooling
		b.Run(fmt.Sprintf("cool=%.2f", cooling), func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultAnnealConfig()
				cfg.Cooling = cooling
				res := Anneal(sys, w, cfg)
				if !res.Feasible {
					b.Fatal("infeasible")
				}
				cost = res.Cost.Total
			}
			b.ReportMetric(cost, "cost")
		})
	}
}
