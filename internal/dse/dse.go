// Package dse implements design-space exploration over the system model
// (Section 2.3 and references [9, 14]): mapping applications to ECUs
// under resource, safety and schedulability constraints, optimizing cost,
// load and communication locality. It provides exhaustive search (exact
// but exponential), a best-fit-decreasing greedy heuristic, and simulated
// annealing, plus whole-design-space variant verification ("it needs to
// be ensured that every possible mapping is functional").
package dse

import (
	"fmt"
	"math"
	"sort"

	"dynaplat/internal/model"
	"dynaplat/internal/sched"
	"dynaplat/internal/sim"
)

// Weights blends the objective components into a scalar cost.
type Weights struct {
	// ECUCost weights the summed Cost of ECUs that host at least one app
	// (consolidation pressure: empty ECUs can be removed from the car).
	ECUCost float64
	// MaxUtil weights the peak deterministic CPU utilization (headroom).
	MaxUtil float64
	// CrossComm weights cross-ECU communication load in Mbps (locality).
	CrossComm float64
}

// DefaultWeights returns a balanced objective.
func DefaultWeights() Weights { return Weights{ECUCost: 1, MaxUtil: 20, CrossComm: 0.5} }

// Cost is an evaluated objective, with its components kept visible.
type Cost struct {
	ECUCost   int
	UsedECUs  int
	MaxUtil   float64
	CrossMbps float64
	Total     float64
}

// Evaluate scores a fully placed system. ok is false when the placement
// is infeasible (validation errors or an unschedulable ECU).
func Evaluate(sys *model.System, w Weights) (Cost, bool) {
	if rep := model.Validate(sys); !rep.OK() {
		return Cost{Total: math.Inf(1)}, false
	}
	var c Cost
	for _, e := range sys.ECUs {
		apps := sys.AppsOn(e.Name)
		if len(apps) == 0 {
			continue
		}
		c.UsedECUs++
		c.ECUCost += e.Cost
		u := sys.ECUUtilization(e)
		if u > c.MaxUtil {
			c.MaxUtil = u
		}
		// Exact schedulability of the deterministic set on this ECU.
		var tasks []sched.Task
		for _, a := range apps {
			if a.Kind != model.Deterministic {
				continue
			}
			tasks = append(tasks, sched.Task{
				Name: a.Name, Period: a.Period,
				WCET: e.ScaledWCET(a.WCET), Deadline: a.Deadline, Jitter: a.Jitter,
			})
		}
		if len(tasks) > 0 {
			if _, ok, err := sched.ResponseTimeAnalysis(tasks); err != nil || !ok {
				// RTA is sufficient-only under DM; fall back to exact
				// EDF synthesis before declaring infeasibility.
				if _, err := sched.Synthesize(tasks, sim.Millisecond); err != nil {
					return Cost{Total: math.Inf(1)}, false
				}
			}
		}
	}
	// Cross-ECU communication load.
	for _, b := range sys.Bindings {
		ifc := sys.Interface(b.Interface)
		if ifc == nil {
			continue
		}
		pEcu, pOK := sys.Placement[ifc.Owner]
		cEcu, cOK := sys.Placement[b.Client]
		if pOK && cOK && pEcu != cEcu {
			c.CrossMbps += ifc.NominalBitsPerSecond() / 1e6
		}
	}
	c.Total = w.ECUCost*float64(c.ECUCost) + w.MaxUtil*c.MaxUtil + w.CrossComm*c.CrossMbps
	return c, true
}

// candidates returns the ECUs an app may map to.
func candidates(sys *model.System, a *model.App) []string {
	if len(a.Candidates) > 0 {
		return a.Candidates
	}
	out := make([]string, 0, len(sys.ECUs))
	for _, e := range sys.ECUs {
		out = append(out, e.Name)
	}
	return out
}

// Result is one exploration outcome.
type Result struct {
	Placement map[string]string
	Cost      Cost
	Feasible  bool
	// Evaluated counts objective evaluations performed.
	Evaluated int64
}

// ErrBudget reports that exhaustive search exceeded its evaluation budget.
var ErrBudget = fmt.Errorf("dse: evaluation budget exhausted")

// Exhaustive enumerates every candidate placement of the system's apps
// and returns the optimum. budget bounds objective evaluations (0 means
// 10 million); exceeding it returns ErrBudget with the best found so far.
func Exhaustive(sys *model.System, w Weights, budget int64) (Result, error) {
	if budget <= 0 {
		budget = 10_000_000
	}
	apps := append([]*model.App(nil), sys.Apps...)
	sort.Slice(apps, func(i, j int) bool { return apps[i].Name < apps[j].Name })
	work := sys.Clone()
	best := Result{Cost: Cost{Total: math.Inf(1)}}
	var overBudget bool

	var recurse func(i int) bool
	recurse = func(i int) bool {
		if i == len(apps) {
			best.Evaluated++
			if best.Evaluated > budget {
				overBudget = true
				return false
			}
			c, ok := Evaluate(work, w)
			if ok && c.Total < best.Cost.Total {
				best.Cost = c
				best.Feasible = true
				best.Placement = clonePlacement(work.Placement)
			}
			return true
		}
		for _, ecu := range candidates(work, work.App(apps[i].Name)) {
			work.Placement[apps[i].Name] = ecu
			if !recurse(i + 1) {
				return false
			}
		}
		delete(work.Placement, apps[i].Name)
		return true
	}
	recurse(0)
	if overBudget {
		return best, ErrBudget
	}
	return best, nil
}

// Greedy places apps best-fit-decreasing: apps sorted by descending
// utilization then memory, each onto the feasible candidate ECU that
// minimizes the incremental objective.
func Greedy(sys *model.System, w Weights) Result {
	work := sys.Clone()
	for _, a := range work.Apps {
		delete(work.Placement, a.Name)
	}
	apps := append([]*model.App(nil), work.Apps...)
	sort.SliceStable(apps, func(i, j int) bool {
		ui, uj := apps[i].Utilization(), apps[j].Utilization()
		if ui != uj {
			return ui > uj
		}
		if apps[i].MemoryKB != apps[j].MemoryKB {
			return apps[i].MemoryKB > apps[j].MemoryKB
		}
		return apps[i].Name < apps[j].Name
	})
	res := Result{}
	for _, a := range apps {
		bestECU := ""
		bestCost := math.Inf(1)
		for _, ecu := range candidates(work, a) {
			work.Placement[a.Name] = ecu
			res.Evaluated++
			if c, ok := evaluatePartial(work, w); ok && c.Total < bestCost {
				bestCost = c.Total
				bestECU = ecu
			}
		}
		if bestECU == "" {
			delete(work.Placement, a.Name)
			return Result{Feasible: false, Evaluated: res.Evaluated, Cost: Cost{Total: math.Inf(1)}}
		}
		work.Placement[a.Name] = bestECU
	}
	c, ok := Evaluate(work, w)
	res.Evaluated++
	res.Cost = c
	res.Feasible = ok
	res.Placement = clonePlacement(work.Placement)
	return res
}

// evaluatePartial scores a partially placed system: validation must hold
// for the placed subset (model.Validate skips unplaced apps).
func evaluatePartial(sys *model.System, w Weights) (Cost, bool) {
	return Evaluate(sys, w)
}

// AnnealConfig tunes simulated annealing (ablation A5).
type AnnealConfig struct {
	// Iterations is the total number of neighbor proposals.
	Iterations int
	// T0 is the initial temperature; Cooling the geometric factor applied
	// every CoolEvery iterations.
	T0        float64
	Cooling   float64
	CoolEvery int
	Seed      uint64
}

// DefaultAnnealConfig returns a robust schedule for ≤ 50-app problems.
func DefaultAnnealConfig() AnnealConfig {
	return AnnealConfig{Iterations: 5000, T0: 50, Cooling: 0.95, CoolEvery: 100, Seed: 1}
}

// Anneal runs simulated annealing from the greedy solution (or a random
// feasible one when greedy fails).
func Anneal(sys *model.System, w Weights, cfg AnnealConfig) Result {
	rng := sim.NewRNG(cfg.Seed)
	work := sys.Clone()
	res := Greedy(sys, w)
	if res.Feasible {
		work.Placement = clonePlacement(res.Placement)
	} else {
		// Random restart.
		for _, a := range work.Apps {
			cs := candidates(work, a)
			work.Placement[a.Name] = cs[rng.Intn(len(cs))]
		}
	}
	cur, curOK := Evaluate(work, w)
	res.Evaluated++
	best := Result{Placement: clonePlacement(work.Placement), Cost: cur, Feasible: curOK,
		Evaluated: res.Evaluated}

	apps := append([]*model.App(nil), work.Apps...)
	sort.Slice(apps, func(i, j int) bool { return apps[i].Name < apps[j].Name })
	if len(apps) == 0 {
		return best
	}
	temp := cfg.T0
	for it := 0; it < cfg.Iterations; it++ {
		if cfg.CoolEvery > 0 && it > 0 && it%cfg.CoolEvery == 0 {
			temp *= cfg.Cooling
		}
		a := apps[rng.Intn(len(apps))]
		cs := candidates(work, a)
		old := work.Placement[a.Name]
		next := cs[rng.Intn(len(cs))]
		if next == old {
			continue
		}
		work.Placement[a.Name] = next
		cand, ok := Evaluate(work, w)
		best.Evaluated++
		accept := false
		switch {
		case ok && (!curOK || cand.Total <= cur.Total):
			accept = true
		case ok && temp > 0:
			accept = rng.Float64() < math.Exp((cur.Total-cand.Total)/temp)
		}
		if accept {
			cur, curOK = cand, ok
			if ok && (!best.Feasible || cand.Total < best.Cost.Total) {
				best.Cost = cand
				best.Feasible = true
				best.Placement = clonePlacement(work.Placement)
			}
		} else {
			work.Placement[a.Name] = old
		}
	}
	return best
}

// VariantReport summarizes whole-space verification (Section 2.3: every
// possible mapping that may be chosen in the field must be functional,
// safe and secure).
type VariantReport struct {
	Total      int64
	Feasible   int64
	Infeasible int64
	Truncated  bool
}

// VerifyAllVariants validates every candidate placement, up to limit
// combinations (0 means 1 million).
func VerifyAllVariants(sys *model.System, w Weights, limit int64) VariantReport {
	if limit <= 0 {
		limit = 1_000_000
	}
	apps := append([]*model.App(nil), sys.Apps...)
	sort.Slice(apps, func(i, j int) bool { return apps[i].Name < apps[j].Name })
	work := sys.Clone()
	rep := VariantReport{}
	var recurse func(i int) bool
	recurse = func(i int) bool {
		if i == len(apps) {
			rep.Total++
			if rep.Total > limit {
				rep.Truncated = true
				rep.Total--
				return false
			}
			if _, ok := Evaluate(work, w); ok {
				rep.Feasible++
			} else {
				rep.Infeasible++
			}
			return true
		}
		for _, ecu := range candidates(work, work.App(apps[i].Name)) {
			work.Placement[apps[i].Name] = ecu
			if !recurse(i + 1) {
				return false
			}
		}
		return true
	}
	recurse(0)
	return rep
}

func clonePlacement(p map[string]string) map[string]string {
	out := make(map[string]string, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}
