package dse

import (
	"errors"
	"math"
	"testing"

	"dynaplat/internal/model"
)

// smallSystem: two RTOS ECUs (one cheap, one big) plus a POSIX head unit;
// three DAs and one NDA with a backbone attaching everything.
func smallSystem() *model.System {
	return model.MustParse(`
system Small
ecu Big cpu=400MHz mem=4MB mmu os=rtos cost=40
ecu Small cpu=100MHz mem=512KB mmu os=rtos cost=10
ecu Head cpu=1000MHz mem=64MB mmu os=posix cost=25
network BB type=ethernet rate=1Gbps attach=Big,Small,Head
app Brake kind=da asil=D period=10ms wcet=2ms mem=64KB
app Steer kind=da asil=D period=5ms wcet=1ms mem=64KB
app Wiper kind=da asil=B period=50ms wcet=5ms mem=32KB
app Media kind=nda asil=QM mem=2MB candidates=Head
iface BrakeStatus owner=Brake paradigm=event payload=8B period=10ms net=BB
bind Media -> BrakeStatus
`)
}

func place(sys *model.System, p map[string]string) *model.System {
	c := sys.Clone()
	for k, v := range p {
		c.Placement[k] = v
	}
	return c
}

func TestEvaluateFeasible(t *testing.T) {
	sys := place(smallSystem(), map[string]string{
		"Brake": "Big", "Steer": "Big", "Wiper": "Small", "Media": "Head",
	})
	c, ok := Evaluate(sys, DefaultWeights())
	if !ok {
		t.Fatal("feasible placement judged infeasible")
	}
	if c.UsedECUs != 3 || c.ECUCost != 75 {
		t.Errorf("cost = %+v", c)
	}
	if c.CrossMbps <= 0 {
		t.Errorf("cross-ECU comm not counted: %+v", c)
	}
	if math.IsInf(c.Total, 1) {
		t.Error("total infinite")
	}
}

func TestEvaluateInfeasible(t *testing.T) {
	// DA on POSIX head unit.
	sys := place(smallSystem(), map[string]string{
		"Brake": "Head", "Steer": "Big", "Wiper": "Small", "Media": "Head",
	})
	if _, ok := Evaluate(sys, DefaultWeights()); ok {
		t.Error("DA-on-POSIX accepted")
	}
	// CPU overload on the slow ECU: Wiper(5ms/50ms) is fine, but Brake
	// (2ms @100MHz ref → 2ms, period 10ms) + Steer (1ms/5ms) + a memory
	// squeeze: put everything on Small (512KB, 100MHz).
	sys2 := place(smallSystem(), map[string]string{
		"Brake": "Small", "Steer": "Small", "Wiper": "Small", "Media": "Head",
	})
	sys2.App("Steer").WCET = sys2.App("Steer").Period // U=1 alone
	if _, ok := Evaluate(sys2, DefaultWeights()); ok {
		t.Error("overloaded ECU accepted")
	}
}

func TestExhaustiveFindsOptimum(t *testing.T) {
	sys := smallSystem()
	res, err := Exhaustive(sys, DefaultWeights(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("no feasible placement found")
	}
	// Consolidation: the optimum packs all DAs onto one RTOS ECU
	// (cheapest feasible subset) — cost 10 is impossible (Small lacks
	// memory? 64+64+32=160KB fits 512KB; utilization 0.2+0.2+0.1=0.5 OK)
	// so DAs on Small + Media on Head = 10+25 = 35.
	if res.Cost.ECUCost != 35 {
		t.Errorf("optimal ECU cost = %d (placement %v), want 35",
			res.Cost.ECUCost, res.Placement)
	}
	if res.Placement["Media"] != "Head" {
		t.Errorf("Media must respect its candidate set: %v", res.Placement)
	}
	if res.Evaluated == 0 {
		t.Error("no evaluations counted")
	}
}

func TestExhaustiveBudget(t *testing.T) {
	_, err := Exhaustive(smallSystem(), DefaultWeights(), 2)
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestGreedyFeasibleAndNearOptimal(t *testing.T) {
	sys := smallSystem()
	g := Greedy(sys, DefaultWeights())
	if !g.Feasible {
		t.Fatal("greedy found nothing")
	}
	opt, _ := Exhaustive(sys, DefaultWeights(), 0)
	if g.Cost.Total < opt.Cost.Total {
		t.Errorf("greedy %v beat exhaustive %v — exhaustive broken", g.Cost.Total, opt.Cost.Total)
	}
	// Greedy must respect candidates.
	if g.Placement["Media"] != "Head" {
		t.Errorf("greedy placement %v", g.Placement)
	}
}

func TestGreedyReportsInfeasible(t *testing.T) {
	sys := smallSystem()
	// Constrain a DA to the POSIX ECU only → nothing feasible.
	sys.App("Brake").Candidates = []string{"Head"}
	g := Greedy(sys, DefaultWeights())
	if g.Feasible {
		t.Error("greedy claimed feasibility")
	}
}

func TestAnnealAtLeastGreedy(t *testing.T) {
	sys := smallSystem()
	g := Greedy(sys, DefaultWeights())
	a := Anneal(sys, DefaultWeights(), DefaultAnnealConfig())
	if !a.Feasible {
		t.Fatal("anneal found nothing")
	}
	if a.Cost.Total > g.Cost.Total+1e-9 {
		t.Errorf("anneal %v worse than its greedy start %v", a.Cost.Total, g.Cost.Total)
	}
	opt, _ := Exhaustive(sys, DefaultWeights(), 0)
	if a.Cost.Total < opt.Cost.Total-1e-9 {
		t.Errorf("anneal %v beat exhaustive %v", a.Cost.Total, opt.Cost.Total)
	}
}

func TestAnnealDeterministicPerSeed(t *testing.T) {
	sys := smallSystem()
	cfg := DefaultAnnealConfig()
	a := Anneal(sys, DefaultWeights(), cfg)
	b := Anneal(sys, DefaultWeights(), cfg)
	if a.Cost.Total != b.Cost.Total {
		t.Errorf("same seed, different results: %v vs %v", a.Cost.Total, b.Cost.Total)
	}
	for k, v := range a.Placement {
		if b.Placement[k] != v {
			t.Errorf("placements differ at %s", k)
		}
	}
}

func TestVerifyAllVariants(t *testing.T) {
	sys := smallSystem()
	rep := VerifyAllVariants(sys, DefaultWeights(), 0)
	// Brake/Steer/Wiper over 3 ECUs each, Media fixed: 27 variants.
	if rep.Total != 27 {
		t.Errorf("total = %d, want 27", rep.Total)
	}
	if rep.Feasible == 0 || rep.Infeasible == 0 {
		t.Errorf("feasible=%d infeasible=%d; expected a mix", rep.Feasible, rep.Infeasible)
	}
	if rep.Feasible+rep.Infeasible != rep.Total {
		t.Error("counts do not add up")
	}
	if rep.Truncated {
		t.Error("unexpected truncation")
	}
	small := VerifyAllVariants(sys, DefaultWeights(), 5)
	if !small.Truncated || small.Total != 5 {
		t.Errorf("limit: %+v", small)
	}
}

func TestConsolidationScenario(t *testing.T) {
	// E15's shape: a federated design (1 function per dedicated ECU) must
	// cost more than the consolidated optimum on the same function set.
	sys := smallSystem()
	federated := place(sys, map[string]string{
		"Brake": "Big", "Steer": "Small", "Wiper": "Small", "Media": "Head",
	})
	fc, ok := Evaluate(federated, DefaultWeights())
	if !ok {
		t.Fatal("federated infeasible")
	}
	opt, _ := Exhaustive(sys, DefaultWeights(), 0)
	if opt.Cost.ECUCost >= fc.ECUCost {
		t.Errorf("consolidated %d !< federated %d", opt.Cost.ECUCost, fc.ECUCost)
	}
}
