package fleet

import (
	"fmt"
	"io"

	"dynaplat/internal/sim"
)

// CampaignConfig parameterizes a fleet-wide staged OTA campaign run by
// the simulated OEM cloud backend.
type CampaignConfig struct {
	// FleetSeed seeds the fleet; vehicle i runs from FleetSeed ⊕ i.
	FleetSeed uint64
	// Vehicles is the fleet size.
	Vehicles int
	// CanaryFraction sizes the first (canary) wave as a fraction of the
	// fleet (0 → 0.02). At least one vehicle.
	CanaryFraction float64
	// Ramp multiplies each subsequent wave's size (0 → 3; min 1).
	Ramp float64
	// Update is the payload every vehicle receives.
	Update UpdateSpec

	// Abort enables the backend's abort-on-regression policy: after each
	// wave the backend compares the wave's aggregate against the budgets
	// below and halts the campaign on a breach.
	Abort bool
	// MaxFailureRate is the per-wave budget for updates that did not
	// ship (rolled back or failed). Breach ⇒ abort (0 → 0.05).
	MaxFailureRate float64
	// MaxAvailRegression is the per-wave budget for mean availability
	// regression (pre − post). Breach ⇒ abort (0 → 0.02). Comparing
	// against each vehicle's own baseline keeps congenitally loaded
	// variants from masking (or faking) an update regression.
	MaxAvailRegression float64
	// RollbackInFlight additionally commands a rollback of the breaching
	// wave's already-shipped vehicles when the campaign halts.
	RollbackInFlight bool

	// Workers bounds the shard worker pool (0 → GOMAXPROCS).
	Workers int
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.CanaryFraction <= 0 {
		c.CanaryFraction = 0.02
	}
	if c.Ramp < 1 {
		c.Ramp = 3
	}
	if c.MaxFailureRate <= 0 {
		c.MaxFailureRate = 0.05
	}
	if c.MaxAvailRegression <= 0 {
		c.MaxAvailRegression = 0.02
	}
	return c
}

// WaveStats aggregates one rollout wave.
type WaveStats struct {
	Wave     int
	Vehicles int

	Shipped, RolledBack, Failed int

	// MeanPre/MeanPost average the wave's per-vehicle availabilities;
	// Regression is MeanPre − MeanPost (positive = worse after update).
	MeanPre, MeanPost, Regression float64
	// FailureRate is (RolledBack + Failed) / Vehicles.
	FailureRate float64
	// MaxSpan is the wave's longest OTA session; SpanP50/P95/P99 are the
	// wave's session-length percentiles. Tail percentiles, not the mean,
	// are what a rollout scheduler budgets by: one straggling vehicle
	// stretches MaxSpan but only the p99 says whether it is an outlier.
	MaxSpan sim.Duration
	SpanP50 sim.Duration
	SpanP95 sim.Duration
	SpanP99 sim.Duration
	// DeadLetters sums middleware teardown drops across the wave.
	DeadLetters int64
	// Breached marks the wave that tripped the abort budgets.
	Breached bool
}

// FleetReport is the campaign result: per-wave aggregates plus every
// vehicle's report, sorted by vehicle index.
type FleetReport struct {
	Config CampaignConfig
	Waves  []WaveStats
	// Vehicles holds one report per fleet vehicle (including skipped
	// ones), ascending by Index.
	Vehicles []VehicleReport

	// Halted reports that the backend aborted the campaign; HaltedWave
	// is the breaching wave's number.
	Halted     bool
	HaltedWave int

	Shipped, RolledBack, Failed, RemoteRollbacks, Skipped int
}

// ShipRate is the fraction of the fleet left running the new version.
func (r *FleetReport) ShipRate() float64 {
	if len(r.Vehicles) == 0 {
		return 0
	}
	return float64(r.Shipped) / float64(len(r.Vehicles))
}

// Render writes the canonical campaign report: a wave table, totals, and
// one line per vehicle. Byte-identical per (config, seed) regardless of
// worker count.
func (r *FleetReport) Render(w io.Writer) {
	fmt.Fprintf(w, "fleet seed=%#x vehicles=%d canary=%.3f ramp=%.1f verify=%v abort=%v\n",
		r.Config.FleetSeed, r.Config.Vehicles, r.Config.CanaryFraction,
		r.Config.Ramp, r.Config.Update.Verify, r.Config.Abort)
	for _, ws := range r.Waves {
		status := "ok"
		if ws.Breached {
			status = "BREACH"
		}
		fmt.Fprintf(w,
			"wave %d: vehicles=%d shipped=%d rolled-back=%d failed=%d fail-rate=%.3f pre=%.1f%% post=%.1f%% regr=%+.3f span-p50/p95/p99/max=%.2f/%.2f/%.2f/%.2fms dead=%d %s\n",
			ws.Wave, ws.Vehicles, ws.Shipped, ws.RolledBack, ws.Failed,
			ws.FailureRate, ws.MeanPre*100, ws.MeanPost*100, ws.Regression,
			float64(ws.SpanP50)/float64(sim.Millisecond),
			float64(ws.SpanP95)/float64(sim.Millisecond),
			float64(ws.SpanP99)/float64(sim.Millisecond),
			float64(ws.MaxSpan)/float64(sim.Millisecond), ws.DeadLetters, status)
	}
	if r.Halted {
		fmt.Fprintf(w, "campaign HALTED at wave %d\n", r.HaltedWave)
	}
	fmt.Fprintf(w, "totals: shipped=%d rolled-back=%d failed=%d remote-rollback=%d skipped=%d ship-rate=%.3f\n",
		r.Shipped, r.RolledBack, r.Failed, r.RemoteRollbacks, r.Skipped, r.ShipRate())
	for _, v := range r.Vehicles {
		fmt.Fprintf(w, "  %s\n", v.Render())
	}
}

// waveSizes splits the fleet into canary + ramped rollout waves.
func waveSizes(vehicles int, canary, ramp float64) []int {
	var sizes []int
	size := int(float64(vehicles) * canary)
	if size < 1 {
		size = 1
	}
	remaining := vehicles
	for remaining > 0 {
		if size > remaining {
			size = remaining
		}
		sizes = append(sizes, size)
		remaining -= size
		size = int(float64(size) * ramp)
		if size < 1 {
			size = 1
		}
	}
	return sizes
}

// RunCampaign drives the staged OTA campaign over the fleet: the canary
// wave first, then ramped rollout waves, aggregating each wave and —
// under the abort policy — halting (and optionally rolling back the
// breaching wave) when a wave exceeds its failure or regression budget.
func RunCampaign(cfg CampaignConfig) (*FleetReport, error) {
	cfg = cfg.withDefaults()
	if cfg.Vehicles <= 0 {
		return nil, fmt.Errorf("fleet: campaign needs at least one vehicle, got %d", cfg.Vehicles)
	}
	rep := &FleetReport{Config: cfg}
	rep.Vehicles = make([]VehicleReport, 0, cfg.Vehicles)

	next := 0
	for wi, size := range waveSizes(cfg.Vehicles, cfg.CanaryFraction, cfg.Ramp) {
		if rep.Halted {
			// Campaign halted: the remaining fleet never receives the
			// update. Reports carry identity only — the vehicles' own
			// simulations never ran.
			for i := next; i < cfg.Vehicles; i++ {
				rep.Vehicles = append(rep.Vehicles, VehicleReport{
					Index: i, ID: VehicleID(i), Outcome: OutcomeSkipped,
				})
				rep.Skipped++
			}
			break
		}

		reports, err := runWave(cfg, next, next+size)
		if err != nil {
			return nil, err
		}
		ws := WaveStats{Wave: wi, Vehicles: size}
		var spans sim.Sample
		for _, v := range reports {
			switch v.Outcome {
			case OutcomeShipped:
				ws.Shipped++
			case OutcomeRolledBack:
				ws.RolledBack++
			default:
				ws.Failed++
			}
			ws.MeanPre += v.PreAvail
			ws.MeanPost += v.PostAvail
			ws.DeadLetters += v.DeadLetters
			spans.AddDuration(v.UpdateSpan)
			if v.UpdateSpan > ws.MaxSpan {
				ws.MaxSpan = v.UpdateSpan
			}
		}
		ws.SpanP50 = spans.PercentileDuration(50)
		ws.SpanP95 = spans.PercentileDuration(95)
		ws.SpanP99 = spans.PercentileDuration(99)
		ws.MeanPre /= float64(size)
		ws.MeanPost /= float64(size)
		ws.Regression = ws.MeanPre - ws.MeanPost
		ws.FailureRate = float64(ws.RolledBack+ws.Failed) / float64(size)

		if cfg.Abort &&
			(ws.FailureRate > cfg.MaxFailureRate || ws.Regression > cfg.MaxAvailRegression) {
			ws.Breached = true
			rep.Halted = true
			rep.HaltedWave = wi
			if cfg.RollbackInFlight {
				// Command the breaching wave's shipped vehicles back to
				// the old version.
				for i := range reports {
					if reports[i].Outcome == OutcomeShipped {
						reports[i].Outcome = OutcomeRemoteRollback
					}
				}
				ws.Shipped = 0
			}
		}

		for _, v := range reports {
			switch v.Outcome {
			case OutcomeShipped:
				rep.Shipped++
			case OutcomeRolledBack:
				rep.RolledBack++
			case OutcomeRemoteRollback:
				rep.RemoteRollbacks++
			default:
				rep.Failed++
			}
		}
		rep.Vehicles = append(rep.Vehicles, reports...)
		rep.Waves = append(rep.Waves, ws)
		next += size
	}
	return rep, nil
}
