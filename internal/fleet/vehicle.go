// Package fleet scales the simulation from one vehicle to a fleet: it
// instantiates N independently seeded vehicle simulations (heterogeneous
// variants drawn from the internal/model generator) and drives a
// fleet-wide staged OTA campaign through the on-vehicle update
// orchestrator (internal/safety/update) and a simulated OEM cloud
// backend — canary cohort, ramped rollout waves, per-cohort aggregation,
// abort-on-regression, halt-and-rollback of the regressing wave.
//
// Determinism contract: vehicle i's report is a pure function of
// fleetSeed ⊕ i and the update spec. Vehicles are sharded across a
// worker pool (internal/par, the same pool shape as the experiment
// harness) and merged sorted by vehicle index, so a fleet run renders
// byte-identically for any worker count — and any single vehicle renders
// byte-identically whether it runs alone, in a 10-vehicle fleet, or in a
// 1000-vehicle sharded fleet.
package fleet

import (
	"fmt"

	"dynaplat/internal/can"
	"dynaplat/internal/model"
	"dynaplat/internal/network"
	"dynaplat/internal/platform"
	"dynaplat/internal/safety/update"
	"dynaplat/internal/sim"
	"dynaplat/internal/soa"
	"dynaplat/internal/tsn"
)

// Per-vehicle simulation timeline. The windows are fixed: the baseline
// window establishes pre-update availability, the OTA session starts at
// its end, and the post window measures availability once the update
// (startup + state sync + redirect + soak ≈ 180ms) has settled.
const (
	vehPreEnd    = 250 * sim.Millisecond
	vehPostStart = 700 * sim.Millisecond
	vehHorizon   = 1000 * sim.Millisecond
	// DefaultSoak is the verification soak window of the staged update.
	DefaultSoak = 150 * sim.Millisecond
)

// UpdateSpec describes the campaign's payload as one vehicle sees it.
type UpdateSpec struct {
	// Verify selects the four-phase update with soak verification and
	// automatic rollback (update.StagedVerified); false is the blind
	// staged update — the "bare" rollout that commits whatever arrives.
	Verify bool
	// FaultProb is the per-vehicle probability that the new version's
	// image is bad (publishes only every fourth period — a visible
	// deterministic-function regression). The draw comes from the
	// vehicle's own seeded stream, so which vehicles are affected is a
	// pure function of the fleet seed.
	FaultProb float64
	// Soak is the verification window (0 = DefaultSoak).
	Soak sim.Duration
}

func (u UpdateSpec) soak() sim.Duration {
	if u.Soak <= 0 {
		return DefaultSoak
	}
	return u.Soak
}

// Outcome classifies how the campaign left one vehicle.
type Outcome int

const (
	// OutcomeShipped: the new version is committed and serving.
	OutcomeShipped Outcome = iota
	// OutcomeRolledBack: on-vehicle verification failed during the soak
	// window; the old version kept serving.
	OutcomeRolledBack
	// OutcomeFailed: the update session could not start (e.g. install).
	OutcomeFailed
	// OutcomeRemoteRollback: the update committed, but the cloud backend
	// aborted the wave and commanded a rollback.
	OutcomeRemoteRollback
	// OutcomeSkipped: the campaign halted before this vehicle's wave.
	OutcomeSkipped
)

func (o Outcome) String() string {
	switch o {
	case OutcomeShipped:
		return "shipped"
	case OutcomeRolledBack:
		return "rolled-back"
	case OutcomeFailed:
		return "failed"
	case OutcomeRemoteRollback:
		return "remote-rollback"
	case OutcomeSkipped:
		return "skipped"
	}
	return "unknown"
}

// VehicleReport is one vehicle's result, renderable canonically.
type VehicleReport struct {
	Index int
	ID    string

	// Variant shape.
	ECUs, DAs, NDAs int
	Bus             string

	// BadImage reports the seeded draw: this vehicle received a bad
	// update image.
	BadImage bool

	// PreAvail/PostAvail are the deterministic-function availabilities
	// (fraction of periods whose sample reached the cockpit sink) in the
	// baseline and post-update windows.
	PreAvail, PostAvail float64

	Outcome Outcome
	// UpdateSpan is the OTA session length (start → commit/rollback).
	UpdateSpan sim.Duration
	// DeadLetters counts middleware deliveries dropped at teardown.
	DeadLetters int64
}

// Render returns the canonical one-line form — the unit of the fleet
// layer's byte-identity contract.
func (r VehicleReport) Render() string {
	bad := "no"
	if r.BadImage {
		bad = "yes"
	}
	return fmt.Sprintf(
		"%s ecus=%d bus=%s das=%d ndas=%d bad=%s pre=%.1f%% post=%.1f%% outcome=%s span=%.2fms dead=%d",
		r.ID, r.ECUs, r.Bus, r.DAs, r.NDAs, bad,
		r.PreAvail*100, r.PostAvail*100, r.Outcome,
		float64(r.UpdateSpan)/float64(sim.Millisecond), r.DeadLetters)
}

// VehicleID renders the canonical vehicle identifier for an index.
func VehicleID(index int) string { return fmt.Sprintf("veh-%05d", index) }

// RunVehicle simulates vehicle `index` of the fleet end to end: build
// the variant, run the baseline window, apply the staged OTA update, run
// the post window, measure. The result is a pure function of
// (fleetSeed ⊕ index, upd) — it does not depend on fleet size, wave
// membership, or worker interleaving.
func RunVehicle(fleetSeed uint64, index int, upd UpdateSpec) VehicleReport {
	rng := sim.NewRNG(fleetSeed ^ uint64(index))
	sys := model.GenerateVariant(rng, VehicleID(index), model.VariantConfig{})
	bad := rng.Bool(upd.FaultProb)
	k := sim.NewKernel(rng.Uint64())

	rep := VehicleReport{
		Index: index, ID: sys.Name,
		ECUs: len(sys.ECUs), Bus: sys.Networks[0].Kind.String(),
		BadImage: bad,
	}

	// Wire the variant's backbone.
	var medium network.Network
	mtu := 1400
	bb := sys.Networks[0]
	switch bb.Kind {
	case model.NetCAN:
		medium = can.New(k, can.Config{Name: bb.Name, BitsPerSecond: bb.BitsPerSecond})
		mtu = can.MaxPayload
	default:
		cfg := tsn.DefaultConfig(bb.Name)
		cfg.BitsPerSecond = bb.BitsPerSecond
		medium = tsn.New(k, cfg)
	}
	mw := soa.New(k, nil)
	mw.AddNetwork(medium, mtu)
	p := platform.New(k, mw)
	for _, e := range sys.ECUs {
		if _, err := p.AddNode(*e, platform.ModeIsolated, 250*sim.Microsecond); err != nil {
			panic(fmt.Sprintf("fleet: %s: add node %s: %v", sys.Name, e.Name, err))
		}
	}

	// Install the app mix. DA apps publish their period index to the
	// cockpit sink every activation; the sink's per-period bitmap is the
	// availability ground truth.
	cons := mw.Endpoint(model.SinkApp, sys.Placement[model.SinkApp])
	type daState struct {
		spec   *model.App
		seen   []bool
		period sim.Duration
	}
	var das []*daState
	var target *daState
	for _, a := range sys.Apps {
		app := a
		home := sys.Placement[app.Name]
		if app.Kind != model.Deterministic {
			inst, err := p.Node(home).Install(*app, platform.Behavior{})
			if err != nil {
				panic(fmt.Sprintf("fleet: %s: install %s: %v", sys.Name, app.Name, err))
			}
			if err := inst.Start(); err != nil {
				panic(fmt.Sprintf("fleet: %s: start %s: %v", sys.Name, app.Name, err))
			}
			rep.NDAs++
			continue
		}
		rep.DAs++
		st := &daState{
			spec:   app,
			period: app.Period,
			seen:   make([]bool, int(int64(vehHorizon)/int64(app.Period))+2),
		}
		das = append(das, st)
		if app.Name == model.OTATargetApp {
			target = st
		}
		iface := app.Name + ".state"
		ep := mw.Endpoint(app.Name, home)
		ep.Offer(iface, soa.OfferOpts{Network: model.BackboneName, Class: network.ClassControl})
		payload := sys.Interface(iface).PayloadBytes
		publish := func(int64) {
			idx := int(int64(k.Now()) / int64(st.period))
			if idx < len(st.seen) {
				ep.Publish(iface, payload, idx)
			}
		}
		if err := cons.Subscribe(iface, func(ev soa.Event) {
			if idx, ok := ev.Payload.(int); ok && idx >= 0 && idx < len(st.seen) {
				st.seen[idx] = true
			}
		}); err != nil {
			panic(fmt.Sprintf("fleet: %s: subscribe %s: %v", sys.Name, iface, err))
		}
		inst, err := p.Node(home).Install(*app, platform.Behavior{OnActivate: publish})
		if err != nil {
			panic(fmt.Sprintf("fleet: %s: install %s: %v", sys.Name, app.Name, err))
		}
		if err := inst.Start(); err != nil {
			panic(fmt.Sprintf("fleet: %s: start %s: %v", sys.Name, app.Name, err))
		}
	}

	// The OTA session: a v2 image of the target app. A bad image
	// publishes only every fourth period — exactly the regression the
	// soak verification (and, fleet-wide, the canary cohort) must catch.
	mgr := update.NewManager(p, mw, update.DefaultConfig())
	// Persisted target state exercises the state-sync phase.
	tgtHome := sys.Placement[model.OTATargetApp]
	p.Node(tgtHome).Store().Put(model.OTATargetApp, "calib", []byte("k=1.02"))
	p.Node(tgtHome).Store().Put(model.OTATargetApp, "odo", []byte("42"))

	newSpec := *target.spec
	newSpec.Version = 2
	newName := fmt.Sprintf("%s@%d", model.OTATargetApp, newSpec.Version)
	tgtIface := model.OTATargetApp + ".state"
	tgtPayload := sys.Interface(tgtIface).PayloadBytes
	ep2 := mw.Endpoint(newName, tgtHome)
	publishV2 := func(int64) {
		idx := int(int64(k.Now()) / int64(target.period))
		if bad && idx%4 != 0 {
			return
		}
		if idx < len(target.seen) {
			ep2.Publish(tgtIface, tgtPayload, idx)
		}
	}
	offers := []update.Offers{{
		Iface: tgtIface,
		Opts:  soa.OfferOpts{Network: model.BackboneName, Class: network.ClassControl},
	}}

	// Soak verification: the last complete soak window of target periods
	// must show healthy delivery. After redirect only the new version
	// delivers (stale publishes by the old one are dropped), so the
	// window measures exactly the v2 image's behavior.
	verify := func() error {
		per := int64(target.period)
		idxNow := int64(k.Now()) / per
		lo := idxNow - int64(upd.soak())/per
		if lo < 1 {
			lo = 1
		}
		hits, n := 0, 0
		for i := lo; i < idxNow-1; i++ {
			n++
			if target.seen[i] {
				hits++
			}
		}
		if n > 0 && float64(hits) < 0.5*float64(n) {
			return fmt.Errorf("soak health %d/%d", hits, n)
		}
		return nil
	}

	updateStart := sim.Time(vehPreEnd)
	var updRep update.Report
	updateDone := false
	var updateEnd sim.Time
	done := func(r update.Report) {
		updRep = r
		updateDone = true
		updateEnd = k.Now()
	}
	sessionErr := false
	k.At(updateStart, func() {
		b := platform.Behavior{OnActivate: publishV2}
		var err error
		if upd.Verify {
			err = mgr.StagedVerified(model.OTATargetApp, newSpec, b, offers, upd.soak(), verify, done)
		} else {
			err = mgr.Staged(model.OTATargetApp, newSpec, b, offers, done)
		}
		if err != nil {
			sessionErr = true
		}
	})

	k.RunUntil(sim.Time(vehHorizon))

	// Availability over complete periods inside each window.
	avail := func(from, to sim.Duration) float64 {
		hits, n := 0, 0
		for _, st := range das {
			lo := int(int64(from)/int64(st.period)) + 1
			hi := int(int64(to) / int64(st.period))
			for i := lo; i < hi; i++ {
				n++
				if st.seen[i] {
					hits++
				}
			}
		}
		if n == 0 {
			return 0
		}
		return float64(hits) / float64(n)
	}
	rep.PreAvail = avail(0, vehPreEnd)
	rep.PostAvail = avail(vehPostStart, vehHorizon)
	rep.DeadLetters = mw.DeadLetters

	switch {
	case sessionErr || !updateDone:
		rep.Outcome = OutcomeFailed
	case updRep.RolledBack:
		rep.Outcome = OutcomeRolledBack
		rep.UpdateSpan = updateEnd.Sub(updateStart)
	default:
		rep.Outcome = OutcomeShipped
		rep.UpdateSpan = updateEnd.Sub(updateStart)
	}
	return rep
}
