package fleet

import (
	"fmt"
	"sort"

	"dynaplat/internal/par"
)

// runWave simulates vehicles [lo, hi) sharded across the worker pool.
// Each worker drives independent single-threaded kernels (one vehicle at
// a time) and streams its reports through a bounded channel into the
// collector, which sorts by vehicle index — never by arrival or map
// order — so the result is byte-identical for any worker count. A
// panicking vehicle simulation is contained by the pool and surfaces as
// an error naming the vehicle.
func runWave(cfg CampaignConfig, lo, hi int) ([]VehicleReport, error) {
	n := hi - lo
	// The bound keeps memory flat when the collector falls behind; the
	// pool blocks rather than buffering the whole wave.
	ch := make(chan VehicleReport, 64)
	collected := make(chan []VehicleReport)
	go func() {
		out := make([]VehicleReport, 0, n)
		for r := range ch {
			out = append(out, r)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
		collected <- out
	}()
	err := par.ForEach(n, cfg.Workers, func(i int) {
		ch <- RunVehicle(cfg.FleetSeed, lo+i, cfg.Update)
	})
	close(ch)
	out := <-collected
	if err != nil {
		if pe, ok := err.(*par.PanicError); ok {
			return nil, fmt.Errorf("fleet: vehicle %s panicked: %w", VehicleID(lo+pe.Index), pe)
		}
		return nil, err
	}
	return out, nil
}
