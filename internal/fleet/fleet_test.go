package fleet

import (
	"bytes"
	"strings"
	"testing"
)

const testSeed = 0xF1EE7

// renderCampaign runs a campaign and returns its canonical rendering.
func renderCampaign(t *testing.T, cfg CampaignConfig) string {
	t.Helper()
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	return buf.String()
}

func TestRunVehicleDeterministic(t *testing.T) {
	upd := UpdateSpec{Verify: true, FaultProb: 0.3}
	for i := 0; i < 10; i++ {
		a := RunVehicle(testSeed, i, upd).Render()
		b := RunVehicle(testSeed, i, upd).Render()
		if a != b {
			t.Fatalf("vehicle %d not deterministic:\n%s\nvs\n%s", i, a, b)
		}
	}
}

// TestVehicleSeedIndependence is the fleet layer's core determinism
// property: vehicle i's report is a pure function of fleetSeed ⊕ i. The
// rendered report must be byte-identical whether the vehicle runs alone,
// inside a 10-vehicle fleet, or inside a 1000-vehicle sharded fleet —
// at any worker count.
func TestVehicleSeedIndependence(t *testing.T) {
	upd := UpdateSpec{Verify: true, FaultProb: 0.3}
	alone := make(map[int]string)
	for _, i := range []int{0, 3, 7, 9, 137, 500, 999} {
		alone[i] = RunVehicle(testSeed, i, upd).Render()
	}

	small, err := RunCampaign(CampaignConfig{
		FleetSeed: testSeed, Vehicles: 10, Update: upd, Workers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 3, 7, 9} {
		if got := small.Vehicles[i].Render(); got != alone[i] {
			t.Errorf("vehicle %d differs in 10-vehicle fleet:\nalone: %s\nfleet: %s",
				i, alone[i], got)
		}
	}

	for _, workers := range []int{1, 4, 13} {
		big, err := RunCampaign(CampaignConfig{
			FleetSeed: testSeed, Vehicles: 1000, Update: upd, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(big.Vehicles) != 1000 {
			t.Fatalf("workers=%d: %d vehicle reports, want 1000", workers, len(big.Vehicles))
		}
		for i, want := range alone {
			if got := big.Vehicles[i].Render(); got != want {
				t.Errorf("workers=%d: vehicle %d differs in 1000-vehicle fleet:\nalone: %s\nfleet: %s",
					workers, i, want, got)
			}
		}
	}
}

// TestCampaignShardedByteIdentical: the full campaign rendering — wave
// table, totals, and every vehicle line — is byte-identical across
// worker counts (the sharded merge sorts by vehicle index, never by
// completion or map order).
func TestCampaignShardedByteIdentical(t *testing.T) {
	cfg := CampaignConfig{
		FleetSeed: testSeed, Vehicles: 300,
		Update: UpdateSpec{Verify: true, FaultProb: 0.3},
		Abort:  true, RollbackInFlight: true,
	}
	cfg.Workers = 1
	serial := renderCampaign(t, cfg)
	for _, workers := range []int{2, 5, 16} {
		cfg.Workers = workers
		if got := renderCampaign(t, cfg); got != serial {
			t.Fatalf("workers=%d: campaign rendering differs from serial", workers)
		}
	}
}

// TestCampaignCanaryAbortCatchesBadUpdate is the fleet-scale safety
// claim: a seeded bad update that bare rollout ships to the whole fleet
// is caught by the canary cohort under the abort policy, bounding the
// blast radius to a small fraction of the fleet.
func TestCampaignCanaryAbortCatchesBadUpdate(t *testing.T) {
	bad := UpdateSpec{FaultProb: 0.3}

	bare := bad
	bareRep, err := RunCampaign(CampaignConfig{
		FleetSeed: testSeed, Vehicles: 400, Update: bare,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bareRep.ShipRate() != 1.0 {
		t.Errorf("bare rollout ship rate %.3f, want 1.0 (ships even bad images)", bareRep.ShipRate())
	}
	if bareRep.Halted {
		t.Error("bare rollout halted without an abort policy")
	}

	guarded := bad
	guarded.Verify = true
	rep, err := RunCampaign(CampaignConfig{
		FleetSeed: testSeed, Vehicles: 400, Update: guarded,
		Abort: true, RollbackInFlight: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Halted {
		t.Fatal("canary+abort campaign did not halt on a 30% bad-image rate")
	}
	if rate := rep.ShipRate(); rate >= 0.15 {
		t.Errorf("canary+abort ship rate %.3f, want < 0.15", rate)
	}
	if rep.Skipped == 0 {
		t.Error("halted campaign skipped no vehicles")
	}
	ws := rep.Waves[rep.HaltedWave]
	if !ws.Breached {
		t.Error("halted wave not marked breached")
	}
	if ws.Shipped != 0 {
		t.Errorf("rollback-in-flight left %d vehicles shipped in the breaching wave", ws.Shipped)
	}
	// Accounting: every vehicle classified exactly once.
	if total := rep.Shipped + rep.RolledBack + rep.Failed + rep.RemoteRollbacks + rep.Skipped; total != 400 {
		t.Errorf("outcome totals %d, want 400", total)
	}
}

// TestCampaignCleanUpdateShipsEverywhere: with a healthy image the abort
// policy must not fire and the whole fleet ships.
func TestCampaignCleanUpdateShipsEverywhere(t *testing.T) {
	rep, err := RunCampaign(CampaignConfig{
		FleetSeed: testSeed, Vehicles: 120,
		Update: UpdateSpec{Verify: true},
		Abort:  true, RollbackInFlight: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Halted {
		t.Fatal("clean update campaign halted")
	}
	if rep.ShipRate() != 1.0 {
		t.Errorf("clean update ship rate %.3f, want 1.0", rep.ShipRate())
	}
	if len(rep.Waves) < 3 {
		t.Errorf("120-vehicle ramped campaign ran %d waves, want ≥3", len(rep.Waves))
	}
}

func TestWaveSizes(t *testing.T) {
	sizes := waveSizes(1000, 0.02, 3)
	if sizes[0] != 20 {
		t.Errorf("canary wave %d, want 20", sizes[0])
	}
	sum := 0
	for i, s := range sizes {
		sum += s
		if i > 0 && i < len(sizes)-1 && s != sizes[i-1]*3 {
			t.Errorf("wave %d size %d does not ramp ×3 from %d", i, s, sizes[i-1])
		}
	}
	if sum != 1000 {
		t.Errorf("wave sizes sum to %d, want 1000", sum)
	}
	// Degenerate: tiny fleet still gets a ≥1-vehicle canary and covers
	// everyone exactly once.
	sum = 0
	for _, s := range waveSizes(3, 0.01, 2) {
		sum += s
	}
	if sum != 3 {
		t.Errorf("3-vehicle fleet wave sizes sum to %d", sum)
	}
}

func TestCampaignValidation(t *testing.T) {
	if _, err := RunCampaign(CampaignConfig{FleetSeed: 1}); err == nil {
		t.Error("zero-vehicle campaign accepted")
	}
}

func TestVehicleReportRender(t *testing.T) {
	r := VehicleReport{
		Index: 7, ID: VehicleID(7), ECUs: 3, Bus: "can", DAs: 2, NDAs: 1,
		BadImage: true, PreAvail: 0.995, PostAvail: 0.25,
		Outcome: OutcomeRolledBack, UpdateSpan: 0, DeadLetters: 2,
	}
	got := r.Render()
	for _, want := range []string{"veh-00007", "bus=can", "bad=yes", "outcome=rolled-back", "dead=2"} {
		if !strings.Contains(got, want) {
			t.Errorf("Render() = %q missing %q", got, want)
		}
	}
}
