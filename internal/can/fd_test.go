package can

import (
	"testing"

	"dynaplat/internal/network"
	"dynaplat/internal/sim"
)

func TestFDPayloadLen(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 8: 8, 9: 12, 13: 16, 33: 48, 49: 64, 64: 64}
	for in, want := range cases {
		if got := FDPayloadLen(in); got != want {
			t.Errorf("FDPayloadLen(%d) = %d, want %d", in, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("FDPayloadLen(65) did not panic")
		}
	}()
	FDPayloadLen(65)
}

func TestFDFrameTimeBeatsClassicForLargePayloads(t *testing.T) {
	// 64 bytes over classic CAN needs 8 frames; one FD frame at
	// 500k/2M carries it far faster.
	classic := 8 * New(sim.NewKernel(1), Config{BitsPerSecond: 500_000}).FrameTime(8)
	fd := FDFrameTime(64, 500_000, 2_000_000)
	if fd >= classic {
		t.Errorf("FD %v !< 8 classic frames %v", fd, classic)
	}
}

func TestFDBusEndToEnd(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewFD(k, Config{Name: "fd", BitsPerSecond: 500_000}, 2_000_000)
	if !b.IsFD() {
		t.Fatal("not FD")
	}
	var got []network.Delivery
	b.Attach("a", func(network.Delivery) {})
	b.Attach("z", func(d network.Delivery) { got = append(got, d) })
	b.Send(network.Message{ID: 0x10, Src: "a", Dst: "z", Bytes: 48})
	k.Run()
	if len(got) != 1 {
		t.Fatalf("deliveries = %d", len(got))
	}
	want := FDFrameTime(48, 500_000, 2_000_000)
	if got[0].Latency() != want {
		t.Errorf("latency = %v, want %v", got[0].Latency(), want)
	}
	// Classic limit no longer applies; FD limit does.
	defer func() {
		if recover() == nil {
			t.Error("65B payload accepted on FD bus")
		}
	}()
	b.Send(network.Message{ID: 1, Src: "a", Bytes: 65})
}

func TestFDArbitrationStillByID(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewFD(k, Config{Name: "fd", BitsPerSecond: 500_000}, 2_000_000)
	var order []uint32
	b.Attach("a", func(network.Delivery) {})
	b.Attach("z", func(d network.Delivery) { order = append(order, d.Msg.ID) })
	k.At(0, func() {
		b.Send(network.Message{ID: 0x300, Src: "a", Dst: "z", Bytes: 64})
		b.Send(network.Message{ID: 0x100, Src: "a", Dst: "z", Bytes: 8})
		b.Send(network.Message{ID: 0x200, Src: "a", Dst: "z", Bytes: 8})
	})
	k.Run()
	if len(order) != 3 || order[1] != 0x100 || order[2] != 0x200 {
		t.Errorf("order = %#x", order)
	}
}

func TestFDDLCQuantizationOnWire(t *testing.T) {
	// 9 bytes must cost the same wire time as 12 (DLC rounding).
	if FDFrameTime(9, 500_000, 2_000_000) != FDFrameTime(12, 500_000, 2_000_000) {
		t.Error("DLC rounding not applied")
	}
	if FDFrameTime(12, 500_000, 2_000_000) >= FDFrameTime(16, 500_000, 2_000_000) {
		t.Error("larger DLC not slower")
	}
}
