package can

import "dynaplat/internal/sim"

// CAN FD support: frames carry up to 64 payload bytes, with the
// arbitration phase running at the nominal bit rate and the data phase
// at an accelerated data bit rate. Modern automotive body/powertrain
// networks migrate from classic CAN to CAN FD exactly to carry the
// larger service-oriented payloads the paper's middleware produces.

// MaxPayloadFD is the CAN FD payload limit.
const MaxPayloadFD = 64

// fdDLCSizes are the representable CAN FD payload lengths.
var fdDLCSizes = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 20, 24, 32, 48, 64}

// FDPayloadLen rounds a payload size up to the next representable CAN FD
// DLC length. It panics above MaxPayloadFD.
func FDPayloadLen(n int) int {
	for _, s := range fdDLCSizes {
		if n <= s {
			return s
		}
	}
	panic("can: payload exceeds CAN FD limit")
}

// Arbitration-phase and data-phase bit counts for an FD frame (11-bit ID,
// worst-case stuffing folded into the constants).
const (
	fdArbBits          = 32 // SOF, ID, control up to BRS, plus ACK/EOF tail
	fdDataOverheadBits = 28 // DLC remainder, CRC(17/21), stuff bits
)

// FDFrameTime returns the wire time of an n-byte CAN FD frame with the
// given nominal and data bit rates.
func FDFrameTime(n int, nominalBps, dataBps int64) sim.Duration {
	if nominalBps <= 0 || dataBps <= 0 {
		return 0
	}
	size := FDPayloadLen(n)
	arb := (int64(fdArbBits)*1_000_000_000 + nominalBps - 1) / nominalBps
	dataBits := int64(size*8 + fdDataOverheadBits)
	data := (dataBits*1_000_000_000 + dataBps - 1) / dataBps
	return sim.Duration(arb + data)
}

// NewFD creates a CAN FD bus: arbitration at cfg.BitsPerSecond, data
// phase at dataBps (e.g. 500 kbps / 2 Mbps).
func NewFD(k *sim.Kernel, cfg Config, dataBps int64) *Bus {
	if cfg.BitsPerSecond <= 0 {
		cfg.BitsPerSecond = 500_000
	}
	if dataBps <= 0 {
		dataBps = 2_000_000
	}
	b := New(k, cfg)
	b.fd = true
	b.dataBps = dataBps
	return b
}

// IsFD reports whether the bus runs CAN FD framing.
func (b *Bus) IsFD() bool { return b.fd }
