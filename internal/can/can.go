// Package can simulates a Controller Area Network bus with bitwise
// priority arbitration and standard-frame timing, including worst-case bit
// stuffing. It implements network.Network.
//
// CAN is the paper's example of a legacy signal-oriented communication
// system whose priority arbitration provides (only) per-frame isolation:
// a high-priority frame waits at most one maximal frame time behind a
// lower-priority transmission already on the wire.
package can

import (
	"fmt"
	"sort"

	"dynaplat/internal/network"
	"dynaplat/internal/sim"
)

// MaxPayload is the classic CAN payload limit.
const MaxPayload = 8

// Config parameterizes a bus.
type Config struct {
	Name string
	// BitsPerSecond is the bus bit rate (e.g. 500_000).
	BitsPerSecond int64
	// WorstCaseStuffing, when true, adds the worst-case stuff-bit count
	// to every frame; otherwise frames carry no stuff bits. Worst case is
	// the correct choice for schedulability reasoning.
	WorstCaseStuffing bool
	// FrameLossRate injects bus errors: each frame is independently lost
	// (error frame, no delivery) with this probability. Lost frames still
	// occupy the bus for their transmission time. Requires a kernel RNG.
	FrameLossRate float64
}

// Bus is a simulated CAN bus.
type Bus struct {
	cfg     Config
	k       *sim.Kernel
	rx      map[string]network.Receiver
	pending []*queued // waiting for arbitration, any station
	busy    bool
	seq     uint64
	fd      bool
	dataBps int64

	// Stats
	FramesSent   int64
	BitsSent     int64
	BusyTime     sim.Duration
	ArbitrationQ sim.Sample // queueing delay before winning arbitration
	// FramesLost counts frames destroyed by injected bus errors.
	FramesLost int64

	rng *sim.RNG
	tap network.Tap
}

type queued struct {
	msg      network.Message
	enqueued sim.Time
	seq      uint64
	span     uint64
}

// New creates a bus on the kernel.
func New(k *sim.Kernel, cfg Config) *Bus {
	if cfg.BitsPerSecond <= 0 {
		cfg.BitsPerSecond = 500_000
	}
	if cfg.FrameLossRate < 0 || cfg.FrameLossRate >= 1 {
		cfg.FrameLossRate = 0
	}
	b := &Bus{cfg: cfg, k: k, rx: map[string]network.Receiver{}}
	if cfg.FrameLossRate > 0 {
		b.rng = k.RNG().Split()
	}
	return b
}

// Name implements network.Network.
func (b *Bus) Name() string { return b.cfg.Name }

// SetTap installs an observability tap; nil disables it. The untapped
// path costs one nil check per frame event.
func (b *Bus) SetTap(t network.Tap) { b.tap = t }

// Attach implements network.Network.
func (b *Bus) Attach(station string, rx network.Receiver) { b.rx[station] = rx }

// Send implements network.Network. Messages longer than MaxPayload are
// rejected with a panic: callers must segment (the SOA layer does).
func (b *Bus) Send(msg network.Message) {
	if _, ok := b.rx[msg.Src]; !ok {
		panic(fmt.Sprintf("can: source %q not attached to %s", msg.Src, b.cfg.Name))
	}
	limit := MaxPayload
	if b.fd {
		limit = MaxPayloadFD
	}
	if msg.Bytes > limit {
		panic(fmt.Sprintf("can: payload %dB exceeds %dB frame limit", msg.Bytes, limit))
	}
	if msg.Bytes < 0 {
		panic("can: negative payload size")
	}
	q := &queued{msg: msg, enqueued: b.k.Now(), seq: b.seq}
	b.seq++
	if b.tap != nil {
		q.span = b.tap.FrameEnqueued(b.cfg.Name, &q.msg, q.enqueued)
	}
	b.pending = append(b.pending, q)
	b.arbitrate()
}

// FrameBits returns the on-wire size of a standard (11-bit ID) data frame
// with n payload bytes: 47 framing bits + 8n data bits, plus worst-case
// stuff bits ⌊(34+8n−1)/4⌋ when enabled.
func FrameBits(n int, worstCaseStuffing bool) int64 {
	bits := int64(47 + 8*n)
	if worstCaseStuffing {
		bits += int64((34 + 8*n - 1) / 4)
	}
	return bits
}

// FrameTime returns the transmission time of an n-byte frame on this bus
// (classic or FD framing, per the bus configuration).
func (b *Bus) FrameTime(n int) sim.Duration {
	if b.fd {
		return FDFrameTime(n, b.cfg.BitsPerSecond, b.dataBps)
	}
	bits := FrameBits(n, b.cfg.WorstCaseStuffing)
	return sim.Duration((bits*1_000_000_000 + b.cfg.BitsPerSecond - 1) / b.cfg.BitsPerSecond)
}

// arbitrate starts the highest-priority pending frame if the bus is idle.
// Lower arbitration ID wins; ties (same ID from different stations would
// be a config error on real CAN) break by enqueue order.
func (b *Bus) arbitrate() {
	if b.busy || len(b.pending) == 0 {
		return
	}
	sort.SliceStable(b.pending, func(i, j int) bool {
		if b.pending[i].msg.ID != b.pending[j].msg.ID {
			return b.pending[i].msg.ID < b.pending[j].msg.ID
		}
		return b.pending[i].seq < b.pending[j].seq
	})
	q := b.pending[0]
	b.pending = b.pending[1:]
	b.busy = true
	ft := b.FrameTime(q.msg.Bytes)
	b.ArbitrationQ.AddDuration(b.k.Now().Sub(q.enqueued))
	b.FramesSent++
	b.BitsSent += FrameBits(q.msg.Bytes, b.cfg.WorstCaseStuffing)
	b.BusyTime += ft
	b.k.Trace("can", "%s: id=%#x %dB from %s tx=%v", b.cfg.Name, q.msg.ID, q.msg.Bytes, q.msg.Src, ft)
	if b.tap != nil {
		b.tap.FrameTxStart(b.cfg.Name, q.span, b.k.Now())
	}
	lost := b.rng != nil && b.rng.Bool(b.cfg.FrameLossRate)
	b.k.After(ft, func() {
		b.busy = false
		if lost {
			b.FramesLost++
			b.k.Trace("can", "%s: id=%#x destroyed by bus error", b.cfg.Name, q.msg.ID)
			if b.tap != nil {
				b.tap.FrameLost(b.cfg.Name, q.span, &q.msg, "bus-error", b.k.Now())
			}
		} else {
			b.deliver(q)
		}
		b.arbitrate()
	})
}

func (b *Bus) deliver(q *queued) {
	d := network.Delivery{Msg: q.msg, Enqueued: q.enqueued, Delivered: b.k.Now()}
	if q.msg.Dst != "" {
		if rx, ok := b.rx[q.msg.Dst]; ok {
			if b.tap != nil {
				b.tap.FrameDelivered(b.cfg.Name, q.span, &q.msg, q.msg.Dst, b.k.Now())
			}
			rx(d)
		} else if b.tap != nil {
			b.tap.FrameLost(b.cfg.Name, q.span, &q.msg, "no-receiver", b.k.Now())
		}
		return
	}
	// CAN is a broadcast medium: everyone but the sender receives.
	names := make([]string, 0, len(b.rx))
	for n := range b.rx {
		if n != q.msg.Src {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		if b.tap != nil {
			b.tap.FrameDelivered(b.cfg.Name, q.span, &q.msg, n, b.k.Now())
		}
		b.rx[n](d)
	}
}

// Utilization returns the fraction of elapsed time the bus was busy.
func (b *Bus) Utilization() float64 {
	if b.k.Now() == 0 {
		return 0
	}
	return float64(b.BusyTime) / float64(b.k.Now())
}

// PendingFrames returns the current arbitration backlog length.
func (b *Bus) PendingFrames() int { return len(b.pending) }
