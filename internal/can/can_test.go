package can

import (
	"testing"

	"dynaplat/internal/network"
	"dynaplat/internal/sim"
)

func newBus(k *sim.Kernel) *Bus {
	return New(k, Config{Name: "body", BitsPerSecond: 500_000})
}

func TestFrameBits(t *testing.T) {
	// 8-byte frame: 47 + 64 = 111 bits unstuffed; +24 worst-case stuffed.
	if got := FrameBits(8, false); got != 111 {
		t.Errorf("FrameBits(8, plain) = %d, want 111", got)
	}
	if got := FrameBits(8, true); got != 135 {
		t.Errorf("FrameBits(8, stuffed) = %d, want 135", got)
	}
	if got := FrameBits(0, false); got != 47 {
		t.Errorf("FrameBits(0) = %d, want 47", got)
	}
}

func TestSingleFrameLatency(t *testing.T) {
	k := sim.NewKernel(1)
	b := newBus(k)
	var got []network.Delivery
	b.Attach("a", func(d network.Delivery) {})
	b.Attach("z", func(d network.Delivery) { got = append(got, d) })
	b.Send(network.Message{ID: 0x100, Src: "a", Dst: "z", Bytes: 8})
	k.Run()
	if len(got) != 1 {
		t.Fatalf("deliveries = %d", len(got))
	}
	// 111 bits at 500 kbps = 222 µs.
	if lat := got[0].Latency(); lat != 222*sim.Microsecond {
		t.Errorf("latency = %v, want 222us", lat)
	}
}

func TestArbitrationLowIDWins(t *testing.T) {
	k := sim.NewKernel(1)
	b := newBus(k)
	var order []uint32
	b.Attach("a", func(network.Delivery) {})
	b.Attach("b", func(network.Delivery) {})
	b.Attach("z", func(d network.Delivery) { order = append(order, d.Msg.ID) })
	k.At(0, func() {
		// All enqueued same instant; the bus must serve by ascending ID.
		b.Send(network.Message{ID: 0x300, Src: "a", Dst: "z", Bytes: 1})
		b.Send(network.Message{ID: 0x100, Src: "b", Dst: "z", Bytes: 1})
		b.Send(network.Message{ID: 0x200, Src: "a", Dst: "z", Bytes: 1})
	})
	k.Run()
	// First Send grabs the idle bus immediately (non-preemptive); the
	// remaining two arbitrate by priority.
	want := []uint32{0x300, 0x100, 0x200}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %#x, want %#x", order, want)
		}
	}
}

func TestBlockingByLowerPriority(t *testing.T) {
	// A high-priority frame enqueued during a bulk transmission waits
	// exactly until the bus frees: the bounded priority-inversion CAN
	// is known for.
	k := sim.NewKernel(1)
	b := newBus(k)
	var urgent network.Delivery
	b.Attach("bulk", func(network.Delivery) {})
	b.Attach("ctrl", func(network.Delivery) {})
	b.Attach("z", func(d network.Delivery) {
		if d.Msg.ID == 0x10 {
			urgent = d
		}
	})
	k.At(0, func() { b.Send(network.Message{ID: 0x700, Src: "bulk", Dst: "z", Bytes: 8}) })
	k.At(sim.Time(10*sim.Microsecond), func() {
		b.Send(network.Message{ID: 0x10, Src: "ctrl", Dst: "z", Bytes: 1})
	})
	k.Run()
	// Bulk frame: 111 bits = 222us. Urgent: 55 bits = 110us, enqueued at
	// 10us, starts at 222us, done at 332us → latency 322us.
	if lat := urgent.Latency(); lat != 322*sim.Microsecond {
		t.Errorf("urgent latency = %v, want 322us", lat)
	}
}

func TestBroadcast(t *testing.T) {
	k := sim.NewKernel(1)
	b := newBus(k)
	got := map[string]int{}
	for _, n := range []string{"a", "b", "c"} {
		n := n
		b.Attach(n, func(network.Delivery) { got[n]++ })
	}
	b.Send(network.Message{ID: 1, Src: "a", Bytes: 4})
	k.Run()
	if got["a"] != 0 || got["b"] != 1 || got["c"] != 1 {
		t.Errorf("broadcast counts = %v", got)
	}
}

func TestSendPanics(t *testing.T) {
	k := sim.NewKernel(1)
	b := newBus(k)
	b.Attach("a", func(network.Delivery) {})
	for _, msg := range []network.Message{
		{ID: 1, Src: "ghost", Bytes: 1},
		{ID: 1, Src: "a", Bytes: 9},
		{ID: 1, Src: "a", Bytes: -1},
	} {
		msg := msg
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Send(%+v) did not panic", msg)
				}
			}()
			b.Send(msg)
		}()
	}
}

func TestUtilizationAndStats(t *testing.T) {
	k := sim.NewKernel(1)
	b := newBus(k)
	b.Attach("a", func(network.Delivery) {})
	b.Attach("z", func(network.Delivery) {})
	for i := 0; i < 10; i++ {
		b.Send(network.Message{ID: uint32(i), Src: "a", Dst: "z", Bytes: 8})
	}
	k.Run()
	if b.FramesSent != 10 {
		t.Errorf("FramesSent = %d", b.FramesSent)
	}
	if u := b.Utilization(); u < 0.99 || u > 1.01 {
		t.Errorf("back-to-back utilization = %v, want ~1", u)
	}
	if b.PendingFrames() != 0 {
		t.Errorf("pending = %d after run", b.PendingFrames())
	}
	if b.ArbitrationQ.Count() != 10 {
		t.Errorf("queue samples = %d", b.ArbitrationQ.Count())
	}
}

func TestWorstCaseStuffingSlows(t *testing.T) {
	k := sim.NewKernel(1)
	plain := New(k, Config{BitsPerSecond: 500_000})
	stuffed := New(k, Config{BitsPerSecond: 500_000, WorstCaseStuffing: true})
	if plain.FrameTime(8) >= stuffed.FrameTime(8) {
		t.Errorf("stuffing should lengthen frames: %v vs %v",
			plain.FrameTime(8), stuffed.FrameTime(8))
	}
}
