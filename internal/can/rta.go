package can

import (
	"fmt"
	"sort"

	"dynaplat/internal/sim"
)

// This file implements worst-case response-time analysis for CAN frame
// sets (Davis, Burns, Bril, Lukkien: "Controller Area Network (CAN)
// schedulability analysis", Real-Time Systems 2007). It is the
// communication-side counterpart of the CPU admission control in
// internal/sched: before mapping an interface onto a CAN bus, the
// platform can prove every frame's worst-case latency.

// FrameSpec describes one periodic frame for analysis.
type FrameSpec struct {
	// ID is the arbitration identifier (lower = higher priority) and
	// must be unique within the set.
	ID uint32
	// Period between queuings; must be positive.
	Period sim.Duration
	// Bytes is the payload size (≤ MaxPayload).
	Bytes int
	// Deadline relative to queuing; 0 means implicit (== Period).
	Deadline sim.Duration
	// Jitter is the queuing jitter (release delay bound).
	Jitter sim.Duration
}

// EffectiveDeadline returns Deadline, or Period when implicit.
func (f *FrameSpec) EffectiveDeadline() sim.Duration {
	if f.Deadline > 0 {
		return f.Deadline
	}
	return f.Period
}

// FrameRTAResult is one frame's analysis outcome.
type FrameRTAResult struct {
	ID       uint32
	Response sim.Duration
	Deadline sim.Duration
	OK       bool
}

// BusUtilization returns the fraction of bus time the frame set needs.
func BusUtilization(frames []FrameSpec, cfg Config) float64 {
	u := 0.0
	for i := range frames {
		bits := FrameBits(frames[i].Bytes, cfg.WorstCaseStuffing)
		txNs := float64(bits) * 1e9 / float64(cfg.BitsPerSecond)
		u += txNs / float64(frames[i].Period)
	}
	return u
}

// ResponseTimeAnalysis computes each frame's worst-case queuing-to-
// delivery response time under priority arbitration with non-preemptive
// transmission: R_i = J_i + w_i + C_i where w_i is the busy-period
// fixpoint over higher-priority interference plus the longest lower-
// priority blocking frame.
func ResponseTimeAnalysis(frames []FrameSpec, cfg Config) ([]FrameRTAResult, bool, error) {
	if cfg.BitsPerSecond <= 0 {
		return nil, false, fmt.Errorf("can: non-positive bit rate")
	}
	seen := map[uint32]bool{}
	for i := range frames {
		f := &frames[i]
		if f.Period <= 0 {
			return nil, false, fmt.Errorf("can: frame %#x: non-positive period", f.ID)
		}
		if f.Bytes < 0 || f.Bytes > MaxPayload {
			return nil, false, fmt.Errorf("can: frame %#x: bad payload %d", f.ID, f.Bytes)
		}
		if seen[f.ID] {
			return nil, false, fmt.Errorf("can: duplicate frame ID %#x", f.ID)
		}
		seen[f.ID] = true
	}
	ordered := append([]FrameSpec(nil), frames...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })

	tx := func(f *FrameSpec) sim.Duration {
		bits := FrameBits(f.Bytes, cfg.WorstCaseStuffing)
		return sim.Duration((bits*1_000_000_000 + cfg.BitsPerSecond - 1) / cfg.BitsPerSecond)
	}
	// tauBit is one bit time: a frame that has started winning
	// arbitration cannot be preempted, so interference is counted from
	// w+tauBit.
	tauBit := sim.Duration((1_000_000_000 + cfg.BitsPerSecond - 1) / cfg.BitsPerSecond)

	results := make([]FrameRTAResult, len(ordered))
	allOK := true
	for i := range ordered {
		fi := &ordered[i]
		ci := tx(fi)
		// Blocking: longest lower-priority frame (non-preemptive).
		var block sim.Duration
		for j := i + 1; j < len(ordered); j++ {
			if c := tx(&ordered[j]); c > block {
				block = c
			}
		}
		d := fi.EffectiveDeadline()
		w := block
		diverged := false
		for iter := 0; ; iter++ {
			if iter > 10000 || w > 100*d {
				diverged = true
				break
			}
			next := block
			for j := 0; j < i; j++ {
				fj := &ordered[j]
				n := (int64(w+tauBit+fj.Jitter) + int64(fj.Period) - 1) / int64(fj.Period)
				if n < 1 {
					n = 1
				}
				next += sim.Duration(n) * tx(fj)
			}
			if next == w {
				break
			}
			w = next
		}
		r := fi.Jitter + w + ci
		ok := !diverged && r <= d
		if !ok {
			allOK = false
		}
		results[i] = FrameRTAResult{ID: fi.ID, Response: r, Deadline: d, OK: ok}
	}
	return results, allOK, nil
}
