package can

import (
	"testing"
	"testing/quick"

	"dynaplat/internal/network"
	"dynaplat/internal/sim"
)

func ms(n int64) sim.Duration { return sim.Duration(n) * sim.Millisecond }

func cfg500k() Config { return Config{BitsPerSecond: 500_000} }

func TestBusUtilization(t *testing.T) {
	frames := []FrameSpec{
		{ID: 1, Period: ms(10), Bytes: 8}, // 111 bits / 500k = 222us per 10ms
	}
	u := BusUtilization(frames, cfg500k())
	if u < 0.022 || u > 0.023 {
		t.Errorf("utilization = %v, want ~0.0222", u)
	}
}

func TestRTAHighestPriorityBlockedOnlyOnce(t *testing.T) {
	frames := []FrameSpec{
		{ID: 0x10, Period: ms(10), Bytes: 1},
		{ID: 0x700, Period: ms(5), Bytes: 8},
	}
	res, ok, err := ResponseTimeAnalysis(frames, cfg500k())
	if err != nil || !ok {
		t.Fatalf("rta: ok=%v err=%v %v", ok, err, res)
	}
	// Frame 0x10: tx = 55 bits = 110us; blocking = 8B frame = 222us.
	// R = 222 + 110 = 332us.
	if res[0].ID != 0x10 || res[0].Response != 332*sim.Microsecond {
		t.Errorf("res[0] = %+v, want R=332us", res[0])
	}
}

func TestRTAValidation(t *testing.T) {
	bad := [][]FrameSpec{
		{{ID: 1, Period: 0, Bytes: 1}},
		{{ID: 1, Period: ms(1), Bytes: 9}},
		{{ID: 1, Period: ms(1), Bytes: 1}, {ID: 1, Period: ms(2), Bytes: 1}},
	}
	for i, frames := range bad {
		if _, _, err := ResponseTimeAnalysis(frames, cfg500k()); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, _, err := ResponseTimeAnalysis(nil, Config{}); err == nil {
		t.Error("zero bit rate accepted")
	}
}

func TestRTAOverloadRejected(t *testing.T) {
	// 3 frames of 8B every 500us at 500kbps: U = 3*222/500 > 1.
	frames := []FrameSpec{
		{ID: 1, Period: 500 * sim.Microsecond, Bytes: 8},
		{ID: 2, Period: 500 * sim.Microsecond, Bytes: 8},
		{ID: 3, Period: 500 * sim.Microsecond, Bytes: 8},
	}
	_, ok, err := ResponseTimeAnalysis(frames, cfg500k())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("overloaded bus accepted")
	}
}

// Property: the analytical worst case is never exceeded by simulation.
// Random frame sets at ≤70% bus load, all stations release in phase
// (the critical instant), simulated for several hyperperiods.
func TestRTABoundsSimulation(t *testing.T) {
	check := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		cfg := cfg500k()
		n := rng.Range(2, 6)
		periods := []sim.Duration{ms(5), ms(10), ms(20)}
		var frames []FrameSpec
		for i := 0; i < n; i++ {
			frames = append(frames, FrameSpec{
				ID:     uint32(0x100 + i*0x10),
				Period: periods[rng.Intn(len(periods))],
				Bytes:  rng.Range(1, 8),
			})
		}
		if BusUtilization(frames, cfg) > 0.7 {
			return true // vacuous
		}
		res, ok, err := ResponseTimeAnalysis(frames, cfg)
		if err != nil || !ok {
			return true // vacuous: only bound feasible sets
		}
		bound := map[uint32]sim.Duration{}
		for _, r := range res {
			bound[r.ID] = r.Response
		}
		// Simulate with synchronous release (worst case instant).
		k := sim.NewKernel(seed)
		bus := New(k, cfg)
		bus.Attach("src", func(network.Delivery) {})
		worst := map[uint32]sim.Duration{}
		bus.Attach("sink", func(d network.Delivery) {
			if d.Latency() > worst[d.Msg.ID] {
				worst[d.Msg.ID] = d.Latency()
			}
		})
		for _, f := range frames {
			f := f
			k.Every(0, f.Period, func() {
				bus.Send(network.Message{ID: f.ID, Src: "src", Dst: "sink", Bytes: f.Bytes})
			})
		}
		k.RunUntil(sim.Time(200 * ms(1)))
		for id, w := range worst {
			if w > bound[id] {
				t.Logf("seed %d: frame %#x simulated %v > bound %v", seed, id, w, bound[id])
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRTAJitterIncreasesResponse(t *testing.T) {
	base := []FrameSpec{
		{ID: 1, Period: ms(10), Bytes: 8},
		{ID: 2, Period: ms(10), Bytes: 8},
	}
	jittery := []FrameSpec{
		{ID: 1, Period: ms(10), Bytes: 8, Jitter: ms(1)},
		{ID: 2, Period: ms(10), Bytes: 8},
	}
	r1, _, _ := ResponseTimeAnalysis(base, cfg500k())
	r2, _, _ := ResponseTimeAnalysis(jittery, cfg500k())
	if r2[0].Response <= r1[0].Response {
		t.Errorf("jitter did not increase R: %v vs %v", r2[0].Response, r1[0].Response)
	}
	// Frame 1's jitter also interferes with lower-priority frame 2.
	if r2[1].Response < r1[1].Response {
		t.Errorf("hp jitter decreased lp response: %v vs %v", r2[1].Response, r1[1].Response)
	}
}
