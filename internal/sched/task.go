// Package sched provides scheduling analysis and synthesis for the dynamic
// platform: time-triggered schedule tables for deterministic applications,
// response-time analysis for priority-based scheduling, admission control,
// and the incremental schedule-management framework of Zhang et al.
// (RTCSA'16, the paper's reference [21]).
//
// All durations are in virtual time and already scaled to the target ECU's
// clock (see model.ECU.ScaledWCET).
package sched

import (
	"fmt"
	"sort"

	"dynaplat/internal/sim"
)

// Task is one deterministic, periodically released unit of execution.
type Task struct {
	Name string
	// Period between releases; must be positive.
	Period sim.Duration
	// WCET is the worst-case execution time on the target ECU.
	WCET sim.Duration
	// Deadline is relative to release; 0 means implicit (== Period).
	Deadline sim.Duration
	// Jitter is the permitted variation of start times relative to
	// release across jobs; 0 means unconstrained.
	Jitter sim.Duration
	// Offset delays the first release.
	Offset sim.Duration
}

// EffectiveDeadline returns Deadline, or Period when implicit.
func (t *Task) EffectiveDeadline() sim.Duration {
	if t.Deadline > 0 {
		return t.Deadline
	}
	return t.Period
}

// Utilization returns WCET/Period.
func (t *Task) Utilization() float64 {
	if t.Period <= 0 {
		return 0
	}
	return float64(t.WCET) / float64(t.Period)
}

// Validate checks the task's parameters for internal consistency.
func (t *Task) Validate() error {
	switch {
	case t.Name == "":
		return fmt.Errorf("sched: task with empty name")
	case t.Period <= 0:
		return fmt.Errorf("sched: task %s: non-positive period %v", t.Name, t.Period)
	case t.WCET <= 0:
		return fmt.Errorf("sched: task %s: non-positive WCET %v", t.Name, t.WCET)
	case t.WCET > t.EffectiveDeadline():
		return fmt.Errorf("sched: task %s: WCET %v exceeds deadline %v",
			t.Name, t.WCET, t.EffectiveDeadline())
	case t.Offset < 0:
		return fmt.Errorf("sched: task %s: negative offset", t.Name)
	}
	return nil
}

// TotalUtilization sums the utilization of a task set.
func TotalUtilization(tasks []Task) float64 {
	u := 0.0
	for i := range tasks {
		u += tasks[i].Utilization()
	}
	return u
}

// ValidateSet validates every task and checks for duplicate names.
func ValidateSet(tasks []Task) error {
	seen := map[string]bool{}
	for i := range tasks {
		if err := tasks[i].Validate(); err != nil {
			return err
		}
		if seen[tasks[i].Name] {
			return fmt.Errorf("sched: duplicate task %s", tasks[i].Name)
		}
		seen[tasks[i].Name] = true
	}
	return nil
}

// Hyperperiod returns the least common multiple of the task periods.
// It returns an error if the hyperperiod would exceed maxHyper (guarding
// against pathological period combinations blowing up table size).
func Hyperperiod(tasks []Task, maxHyper sim.Duration) (sim.Duration, error) {
	if len(tasks) == 0 {
		return 0, fmt.Errorf("sched: empty task set")
	}
	h := int64(tasks[0].Period)
	for _, t := range tasks[1:] {
		h = lcm(h, int64(t.Period))
		if h <= 0 || (maxHyper > 0 && h > int64(maxHyper)) {
			return 0, fmt.Errorf("sched: hyperperiod exceeds limit %v", maxHyper)
		}
	}
	return sim.Duration(h), nil
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int64) int64 { return a / gcd(a, b) * b }

// SortByDeadline orders tasks deadline-monotonically (shortest effective
// deadline first), the optimal fixed-priority assignment for constrained
// deadlines. Ties break by name for determinism.
func SortByDeadline(tasks []Task) {
	sort.SliceStable(tasks, func(i, j int) bool {
		di, dj := tasks[i].EffectiveDeadline(), tasks[j].EffectiveDeadline()
		if di != dj {
			return di < dj
		}
		return tasks[i].Name < tasks[j].Name
	})
}
