package sched

import (
	"errors"
	"testing"
	"testing/quick"

	"dynaplat/internal/sim"
)

func ms(n int64) sim.Duration { return sim.Duration(n) * sim.Millisecond }

func simpleSet() []Task {
	return []Task{
		{Name: "brake", Period: ms(10), WCET: ms(2), Deadline: ms(10)},
		{Name: "susp", Period: ms(5), WCET: ms(1), Deadline: ms(5)},
		{Name: "motor", Period: ms(20), WCET: ms(4), Deadline: ms(20)},
	}
}

func TestHyperperiod(t *testing.T) {
	h, err := Hyperperiod(simpleSet(), MaxHyperperiod)
	if err != nil || h != ms(20) {
		t.Fatalf("hyperperiod = %v, %v; want 20ms", h, err)
	}
	_, err = Hyperperiod([]Task{{Period: ms(7)}, {Period: ms(11)}, {Period: ms(13)}, {Period: ms(17)}, {Period: ms(19)}}, ms(100))
	if err == nil {
		t.Error("expected hyperperiod limit error")
	}
	_, err = Hyperperiod(nil, 0)
	if err == nil {
		t.Error("expected empty-set error")
	}
}

func TestTaskValidate(t *testing.T) {
	bad := []Task{
		{Name: "", Period: ms(1), WCET: ms(1)},
		{Name: "x", Period: 0, WCET: ms(1)},
		{Name: "x", Period: ms(1), WCET: 0},
		{Name: "x", Period: ms(10), WCET: ms(5), Deadline: ms(3)},
		{Name: "x", Period: ms(1), WCET: ms(1), Offset: -1},
	}
	for i, task := range bad {
		if err := task.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, task)
		}
	}
	good := Task{Name: "x", Period: ms(10), WCET: ms(2)}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected good task: %v", err)
	}
	if err := ValidateSet([]Task{good, good}); err == nil {
		t.Error("ValidateSet accepted duplicate names")
	}
}

func TestSynthesizeAndVerify(t *testing.T) {
	tasks := simpleSet()
	tbl, err := Synthesize(tasks, ms(1)/2)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if err := tbl.Verify(tasks); err != nil {
		t.Fatalf("Verify: %v\n%v", err, tbl)
	}
	// brake 2/10 + susp 1/5 + motor 4/20 = 0.6
	if u := tbl.Utilization(); u < 0.59 || u > 0.61 {
		t.Errorf("utilization = %v, want 0.6", u)
	}
	if tbl.Hyperperiod != ms(20) {
		t.Errorf("hyperperiod = %v", tbl.Hyperperiod)
	}
}

func TestSynthesizeInfeasible(t *testing.T) {
	tasks := []Task{
		{Name: "a", Period: ms(10), WCET: ms(6)},
		{Name: "b", Period: ms(10), WCET: ms(6)},
	}
	_, err := Synthesize(tasks, ms(1))
	var inf *InfeasibleError
	if !errors.As(err, &inf) {
		t.Fatalf("err = %v, want InfeasibleError", err)
	}
}

func TestSynthesizeFullUtilization(t *testing.T) {
	tasks := []Task{
		{Name: "a", Period: ms(4), WCET: ms(2)},
		{Name: "b", Period: ms(8), WCET: ms(4)},
	}
	tbl, err := Synthesize(tasks, ms(1))
	if err != nil {
		t.Fatalf("U=1 set should be EDF-schedulable: %v", err)
	}
	if err := tbl.Verify(tasks); err != nil {
		t.Fatal(err)
	}
	if u := tbl.Utilization(); u != 1.0 {
		t.Errorf("utilization = %v, want 1", u)
	}
}

func TestTaskAt(t *testing.T) {
	tasks := []Task{{Name: "only", Period: ms(10), WCET: ms(3)}}
	tbl, err := Synthesize(tasks, ms(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.TaskAt(0); got != "only" {
		t.Errorf("TaskAt(0) = %q", got)
	}
	if got := tbl.TaskAt(ms(5)); got != "" {
		t.Errorf("TaskAt(5ms) = %q, want idle", got)
	}
	// Cyclic wrap: 12ms → 2ms into second period.
	if got := tbl.TaskAt(ms(12)); got != "only" {
		t.Errorf("TaskAt(12ms) = %q", got)
	}
}

func TestSynthesizeWithOffsetsAndJitterBound(t *testing.T) {
	tasks := []Task{
		{Name: "a", Period: ms(10), WCET: ms(2), Offset: ms(1), Jitter: ms(1)},
		{Name: "b", Period: ms(5), WCET: ms(1), Jitter: ms(2)},
	}
	tbl, err := Synthesize(tasks, ms(1)/4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Verify(tasks); err != nil {
		t.Fatal(err)
	}
	for _, s := range tbl.SlotsFor("a") {
		if s.Start < ms(1) {
			t.Errorf("task a scheduled at %v before offset", s.Start)
		}
	}
}

// Property: any randomly generated task set with density ≤ 0.9 must
// synthesize successfully and verify (EDF optimality).
func TestSynthesizeProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	periods := []sim.Duration{ms(5), ms(10), ms(20), ms(40)}
	err := quick.Check(func(seed uint64) bool {
		r := sim.NewRNG(seed)
		n := r.Range(1, 6)
		var tasks []Task
		budget := 0.9
		for i := 0; i < n; i++ {
			p := periods[r.Intn(len(periods))]
			maxU := budget / float64(n)
			wcet := sim.Duration(float64(p) * maxU * (0.2 + 0.8*r.Float64()))
			if wcet <= 0 {
				wcet = sim.Microsecond
			}
			tasks = append(tasks, Task{
				Name: string(rune('a' + i)), Period: p, WCET: wcet,
			})
		}
		tbl, err := Synthesize(tasks, ms(1)/4)
		if err != nil {
			t.Logf("seed %d: synth failed: %v", seed, err)
			return false
		}
		return tbl.Verify(tasks) == nil
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestRTABasic(t *testing.T) {
	results, ok, err := ResponseTimeAnalysis(simpleSet())
	if err != nil || !ok {
		t.Fatalf("RTA failed: ok=%v err=%v results=%v", ok, err, results)
	}
	// susp has the shortest deadline → highest priority → R = WCET.
	for _, r := range results {
		if r.Task == "susp" && r.Response != ms(1) {
			t.Errorf("susp response = %v, want 1ms", r.Response)
		}
		if r.Task == "brake" && r.Response != ms(3) {
			// brake preempted once by susp: 2 + 1 = 3ms
			t.Errorf("brake response = %v, want 3ms", r.Response)
		}
	}
}

func TestRTAOverload(t *testing.T) {
	tasks := []Task{
		{Name: "a", Period: ms(10), WCET: ms(6)},
		{Name: "b", Period: ms(10), WCET: ms(6)},
	}
	_, ok, err := ResponseTimeAnalysis(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("RTA accepted overloaded set")
	}
}

func TestRTAAgreesWithSynthesisOnFeasibility(t *testing.T) {
	// If RTA (fixed-priority, pessimistic) accepts, EDF synthesis must too.
	err := quick.Check(func(seed uint64) bool {
		r := sim.NewRNG(seed)
		periods := []sim.Duration{ms(5), ms(10), ms(20)}
		var tasks []Task
		for i := 0; i < r.Range(1, 5); i++ {
			p := periods[r.Intn(len(periods))]
			tasks = append(tasks, Task{
				Name:   string(rune('a' + i)),
				Period: p,
				WCET:   sim.Duration(r.Range(1, int(p)/4)),
			})
		}
		_, rtaOK, err := ResponseTimeAnalysis(tasks)
		if err != nil || !rtaOK {
			return true // vacuous
		}
		_, synthErr := Synthesize(tasks, ms(1)/4)
		return synthErr == nil
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestLiuLayland(t *testing.T) {
	if b := LiuLaylandBound(1); b != 1.0 {
		t.Errorf("LL(1) = %v, want 1", b)
	}
	b2 := LiuLaylandBound(2)
	if b2 < 0.82 || b2 > 0.83 {
		t.Errorf("LL(2) = %v, want ~0.828", b2)
	}
	if LiuLaylandBound(0) != 0 {
		t.Error("LL(0) != 0")
	}
	if !QuickSchedulable(simpleSet()) {
		t.Error("simple set should pass quick test (U=0.6 < LL(3)=0.78)")
	}
}

func TestEDFSchedulable(t *testing.T) {
	if !EDFSchedulable(simpleSet()) {
		t.Error("U=0.6 should be EDF schedulable")
	}
	over := []Task{
		{Name: "a", Period: ms(10), WCET: ms(6)},
		{Name: "b", Period: ms(10), WCET: ms(6)},
	}
	if EDFSchedulable(over) {
		t.Error("U=1.2 should not be EDF schedulable")
	}
}

func TestManagerAdmitIncremental(t *testing.T) {
	m := NewManager(ms(1) / 4)
	r1, err := m.Admit(Task{Name: "a", Period: ms(10), WCET: ms(2)})
	if err != nil || !r1.Admitted {
		t.Fatalf("first admit: %+v %v", r1, err)
	}
	firstSlots := append([]Slot(nil), m.Table().Slots...)
	r2, err := m.Admit(Task{Name: "b", Period: ms(10), WCET: ms(3)})
	if err != nil || !r2.Admitted {
		t.Fatalf("second admit: %+v %v", r2, err)
	}
	if !r2.Incremental {
		t.Errorf("second admit should be incremental: %+v", r2)
	}
	if r2.MovedSlots != 0 {
		t.Errorf("incremental admit moved %d slots", r2.MovedSlots)
	}
	// Original slots must be untouched.
	for _, old := range firstSlots {
		found := false
		for _, s := range m.Table().Slots {
			if s.Task == old.Task && s.Start == old.Start && s.End == old.End {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("incremental admit moved slot %+v", old)
		}
	}
	if err := m.Table().Verify(m.Tasks()); err != nil {
		t.Fatal(err)
	}
}

func TestManagerAdmitRejectsOverload(t *testing.T) {
	m := NewManager(ms(1))
	if _, err := m.Admit(Task{Name: "a", Period: ms(10), WCET: ms(8)}); err != nil {
		t.Fatal(err)
	}
	res, err := m.Admit(Task{Name: "b", Period: ms(10), WCET: ms(8)})
	if err == nil || res.Admitted {
		t.Fatalf("overload admitted: %+v", res)
	}
	// The existing schedule must survive a failed admission.
	if m.Table() == nil || len(m.Tasks()) != 1 {
		t.Error("failed admission disturbed existing schedule")
	}
}

func TestManagerAdmitDuplicate(t *testing.T) {
	m := NewManager(0)
	if _, err := m.Admit(Task{Name: "a", Period: ms(10), WCET: ms(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Admit(Task{Name: "a", Period: ms(20), WCET: ms(1)}); err == nil {
		t.Error("duplicate admit succeeded")
	}
}

func TestManagerRemove(t *testing.T) {
	m := NewManager(ms(1))
	m.Admit(Task{Name: "a", Period: ms(10), WCET: ms(2)})
	m.Admit(Task{Name: "b", Period: ms(5), WCET: ms(1)})
	if err := m.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if len(m.Tasks()) != 1 || m.Tasks()[0].Name != "b" {
		t.Errorf("tasks after remove = %v", m.Tasks())
	}
	if err := m.Remove("ghost"); err == nil {
		t.Error("removing unknown task succeeded")
	}
	if err := m.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if m.Table() != nil {
		t.Error("table should be nil after last removal")
	}
}

func TestManagerFallsBackToFullSynthesis(t *testing.T) {
	m := NewManager(ms(1))
	// Fill 80% so that a new tight-deadline task can't fit incrementally
	// around the locked slots.
	if _, err := m.Admit(Task{Name: "big", Period: ms(10), WCET: ms(8)}); err != nil {
		t.Fatal(err)
	}
	res, err := m.Admit(Task{Name: "tight", Period: ms(10), WCET: ms(2), Deadline: ms(2)})
	if err != nil {
		// Depending on where EDF placed "big", full resynthesis should
		// still find a solution (EDF: big has 10ms deadline, tight 2ms).
		t.Fatalf("full resynthesis should admit: %v", err)
	}
	if res.Incremental {
		// The locked table has big at [0,8) so tight can't make its 2ms
		// deadline incrementally; must have been a full resynthesis.
		t.Errorf("expected full resynthesis, got incremental: %+v", res)
	}
	if err := m.Table().Verify(m.Tasks()); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesisTime(t *testing.T) {
	// 1e6 ops at 100 MHz: 25e6 cycles / 100e6 Hz = 250 ms.
	if d := SynthesisTime(1_000_000, 100); d != 250*sim.Millisecond {
		t.Errorf("SynthesisTime = %v, want 250ms", d)
	}
	// Backend at 10 GHz-equivalent is 100x faster.
	if d := SynthesisTime(1_000_000, 10000); d != sim.Duration(2500*sim.Microsecond) {
		t.Errorf("backend SynthesisTime = %v", d)
	}
}

func TestSortByDeadline(t *testing.T) {
	tasks := []Task{
		{Name: "late", Period: ms(100), WCET: ms(1)},
		{Name: "mid", Period: ms(50), WCET: ms(1)},
		{Name: "early", Period: ms(10), WCET: ms(1)},
	}
	SortByDeadline(tasks)
	if tasks[0].Name != "early" || tasks[2].Name != "late" {
		t.Errorf("order = %v %v %v", tasks[0].Name, tasks[1].Name, tasks[2].Name)
	}
}

func BenchmarkSynthesize20(b *testing.B) {
	var tasks []Task
	periods := []sim.Duration{ms(5), ms(10), ms(20), ms(40)}
	r := sim.NewRNG(1)
	for i := 0; i < 20; i++ {
		p := periods[r.Intn(len(periods))]
		tasks = append(tasks, Task{
			Name: string(rune('a'+i%26)) + string(rune('0'+i/26)), Period: p,
			WCET: sim.Duration(int64(p) / 25),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(tasks, ms(1)/4); err != nil {
			b.Fatal(err)
		}
	}
}
