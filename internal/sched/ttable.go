package sched

import (
	"fmt"
	"sort"
	"strings"

	"dynaplat/internal/sim"
)

// Slot is one contiguous execution window in a time-triggered table.
// Start/End are offsets within the hyperperiod.
type Slot struct {
	Task  string
	Job   int // job index within the hyperperiod
	Start sim.Duration
	End   sim.Duration
}

// Len returns the slot's length.
func (s Slot) Len() sim.Duration { return s.End - s.Start }

// Table is a synthesized time-triggered schedule over one hyperperiod.
// The table repeats cyclically at runtime.
type Table struct {
	Hyperperiod sim.Duration
	Granularity sim.Duration
	// Slots are sorted by start and non-overlapping.
	Slots []Slot
	// SynthesisOps counts elementary synthesis operations; the backend-
	// versus-ECU experiment (E3) converts it to CPU time at a clock rate.
	SynthesisOps int64

	// byTask is a lazily built per-task slot index serving SlotsFor on
	// the platform dispatch hot path; normalize invalidates it.
	byTask map[string][]Slot
}

// DefaultGranularity is the slot quantum used when none is specified
// (ablation A1 varies this).
const DefaultGranularity = 250 * sim.Microsecond

// InfeasibleError reports which task could not meet its deadline.
type InfeasibleError struct {
	Task string
	Job  int
	At   sim.Duration
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("sched: infeasible: task %s job %d misses deadline at %v",
		e.Task, e.Job, e.At)
}

// MaxHyperperiod bounds synthesized tables to keep memory predictable.
const MaxHyperperiod = 10 * sim.Second

// Synthesize builds a time-triggered table for the task set using
// preemptive EDF placement at the given slot granularity. EDF is optimal
// on one processor, so if Synthesize fails no table at that granularity
// exists. This is the computation the paper proposes to run in the
// backend rather than on the ECU (Section 3.1 "CPU").
func Synthesize(tasks []Task, granularity sim.Duration) (*Table, error) {
	if granularity <= 0 {
		granularity = DefaultGranularity
	}
	if err := ValidateSet(tasks); err != nil {
		return nil, err
	}
	hyper, err := Hyperperiod(tasks, MaxHyperperiod)
	if err != nil {
		return nil, err
	}
	tbl := &Table{Hyperperiod: hyper, Granularity: granularity}
	free := newTimeline(hyper)
	if err := tbl.placeEDF(tasks, free, false); err != nil {
		return nil, err
	}
	tbl.normalize()
	return tbl, nil
}

// job is one release of a task during the hyperperiod.
type job struct {
	task      *Task
	index     int
	release   sim.Duration
	deadline  sim.Duration
	remaining sim.Duration
}

// placeEDF fills the free timeline with the tasks' jobs in EDF order.
// If locked is true the timeline already contains reserved regions that
// must not move (incremental synthesis).
func (t *Table) placeEDF(tasks []Task, free *timeline, locked bool) error {
	_ = locked
	var jobs []*job
	for i := range tasks {
		task := &tasks[i]
		for r := task.Offset; r < t.Hyperperiod; r += task.Period {
			jobs = append(jobs, &job{
				task:      task,
				index:     int((r - task.Offset) / task.Period),
				release:   r,
				deadline:  r + task.EffectiveDeadline(),
				remaining: task.WCET,
			})
		}
	}
	// EDF over the quantized timeline: repeatedly give the next free
	// quantum to the released job with the earliest deadline.
	sort.SliceStable(jobs, func(i, j int) bool {
		if jobs[i].release != jobs[j].release {
			return jobs[i].release < jobs[j].release
		}
		return jobs[i].task.Name < jobs[j].task.Name
	})
	pending := jobs
	var active []*job
	g := t.Granularity
	for now := sim.Duration(0); now < t.Hyperperiod; now += g {
		t.SynthesisOps++
		for len(pending) > 0 && pending[0].release <= now {
			active = append(active, pending[0])
			pending = pending[1:]
		}
		if !free.isFree(now, now+g) {
			continue
		}
		// Fill the quantum: repeatedly give the earliest-deadline active
		// job the remaining quantum time, so short jobs don't waste the
		// rest of their quantum (essential for large task sets).
		offset := now
		quantumEnd := now + g
		if quantumEnd > t.Hyperperiod {
			quantumEnd = t.Hyperperiod
		}
		for offset < quantumEnd {
			var pick *job
			for _, j := range active {
				t.SynthesisOps++
				if j.remaining <= 0 {
					continue
				}
				if pick == nil || j.deadline < pick.deadline ||
					(j.deadline == pick.deadline && j.task.Name < pick.task.Name) {
					pick = j
				}
			}
			if pick == nil {
				break
			}
			run := quantumEnd - offset
			if pick.remaining < run {
				run = pick.remaining
			}
			pick.remaining -= run
			t.Slots = append(t.Slots, Slot{Task: pick.task.Name, Job: pick.index, Start: offset, End: offset + run})
			if pick.remaining == 0 && offset+run > pick.deadline {
				return &InfeasibleError{Task: pick.task.Name, Job: pick.index, At: offset + run}
			}
			offset += run
		}
	}
	for _, j := range jobs {
		if j.remaining > 0 {
			return &InfeasibleError{Task: j.task.Name, Job: j.index, At: t.Hyperperiod}
		}
	}
	return nil
}

// normalize sorts slots and merges adjacent slots of the same job.
func (t *Table) normalize() {
	sort.Slice(t.Slots, func(i, j int) bool { return t.Slots[i].Start < t.Slots[j].Start })
	merged := t.Slots[:0]
	for _, s := range t.Slots {
		if n := len(merged); n > 0 && merged[n-1].Task == s.Task &&
			merged[n-1].Job == s.Job && merged[n-1].End == s.Start {
			merged[n-1].End = s.End
			continue
		}
		merged = append(merged, s)
	}
	t.Slots = merged
	t.byTask = nil // invalidate the SlotsFor index
}

// TaskAt returns the task scheduled at hyperperiod-relative offset off,
// or "" for idle time.
func (t *Table) TaskAt(off sim.Duration) string {
	off %= t.Hyperperiod
	i := sort.Search(len(t.Slots), func(i int) bool { return t.Slots[i].End > off })
	if i < len(t.Slots) && t.Slots[i].Start <= off {
		return t.Slots[i].Task
	}
	return ""
}

// SlotsFor returns the slots belonging to the named task. The result is
// served from a lazily built per-task index (the platform dispatcher
// calls this once per job release, which made the previous full-scan-
// plus-allocate version a measurable hot spot); callers must not mutate
// the returned slice.
func (t *Table) SlotsFor(task string) []Slot {
	if t.byTask == nil {
		idx := make(map[string][]Slot, 8)
		for _, s := range t.Slots {
			idx[s.Task] = append(idx[s.Task], s)
		}
		t.byTask = idx
	}
	return t.byTask[task]
}

// Utilization returns the fraction of the hyperperiod that is scheduled.
func (t *Table) Utilization() float64 {
	var busy sim.Duration
	for _, s := range t.Slots {
		busy += s.Len()
	}
	return float64(busy) / float64(t.Hyperperiod)
}

// Verify re-checks the invariants of a synthesized table against its task
// set: slots sorted and disjoint, every job fully scheduled between
// release and deadline, and start-time jitter within each task's bound.
// A table is installed on the vehicle only after Verify (and simulation)
// pass — the paper's "test this schedule ... in the backend".
func (t *Table) Verify(tasks []Task) error {
	for i := 1; i < len(t.Slots); i++ {
		if t.Slots[i].Start < t.Slots[i-1].End {
			return fmt.Errorf("sched: slots %d and %d overlap", i-1, i)
		}
	}
	for i := range tasks {
		task := &tasks[i]
		jobs := int((t.Hyperperiod - task.Offset + task.Period - 1) / task.Period)
		var starts []sim.Duration
		for j := 0; j < jobs; j++ {
			release := task.Offset + sim.Duration(j)*task.Period
			deadline := release + task.EffectiveDeadline()
			var got sim.Duration
			first := sim.Duration(-1)
			for _, s := range t.Slots {
				if s.Task != task.Name || s.Job != j {
					continue
				}
				if s.Start < release {
					return fmt.Errorf("sched: %s job %d starts %v before release %v",
						task.Name, j, s.Start, release)
				}
				if s.End > deadline {
					return fmt.Errorf("sched: %s job %d ends %v after deadline %v",
						task.Name, j, s.End, deadline)
				}
				if first < 0 {
					first = s.Start
				}
				got += s.Len()
			}
			if got < task.WCET {
				return fmt.Errorf("sched: %s job %d allocated %v < WCET %v",
					task.Name, j, got, task.WCET)
			}
			starts = append(starts, first-release)
		}
		if task.Jitter > 0 && len(starts) > 1 {
			lo, hi := starts[0], starts[0]
			for _, s := range starts[1:] {
				if s < lo {
					lo = s
				}
				if s > hi {
					hi = s
				}
			}
			if hi-lo > task.Jitter {
				return fmt.Errorf("sched: %s start jitter %v exceeds bound %v",
					task.Name, hi-lo, task.Jitter)
			}
		}
	}
	return nil
}

// String renders the table compactly for diagnostics.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "hyperperiod=%v slots=%d util=%.2f\n", t.Hyperperiod, len(t.Slots), t.Utilization())
	for _, s := range t.Slots {
		fmt.Fprintf(&sb, "  [%8v..%8v) %s#%d\n", s.Start, s.End, s.Task, s.Job)
	}
	return sb.String()
}

// timeline tracks reserved intervals over [0, hyper).
type timeline struct {
	hyper    sim.Duration
	reserved []Slot // sorted, disjoint
}

func newTimeline(hyper sim.Duration) *timeline { return &timeline{hyper: hyper} }

// reserve marks [start, end) as occupied.
func (tl *timeline) reserve(s Slot) {
	tl.reserved = append(tl.reserved, s)
	sort.Slice(tl.reserved, func(i, j int) bool { return tl.reserved[i].Start < tl.reserved[j].Start })
}

// isFree reports whether [start, end) overlaps no reservation.
func (tl *timeline) isFree(start, end sim.Duration) bool {
	i := sort.Search(len(tl.reserved), func(i int) bool { return tl.reserved[i].End > start })
	return i >= len(tl.reserved) || tl.reserved[i].Start >= end
}
