package sched

// Ablation A1 (DESIGN.md §4): time-triggered slot granularity. Finer
// quanta cost more synthesis work; the "ops" metric makes the trade-off
// visible alongside wall time.

import (
	"fmt"
	"testing"

	"dynaplat/internal/sim"
)

func ablationTaskSet() []Task {
	rng := sim.NewRNG(99)
	periods := []sim.Duration{5 * sim.Millisecond, 10 * sim.Millisecond, 20 * sim.Millisecond}
	var tasks []Task
	for i := 0; i < 15; i++ {
		p := periods[rng.Intn(len(periods))]
		tasks = append(tasks, Task{
			Name:   fmt.Sprintf("t%02d", i),
			Period: p,
			WCET:   sim.Duration(int64(p) / 25),
		})
	}
	return tasks
}

func BenchmarkA1Granularity(b *testing.B) {
	for _, g := range []sim.Duration{
		62500 * sim.Nanosecond, 250 * sim.Microsecond, sim.Millisecond,
	} {
		g := g
		b.Run(g.String(), func(b *testing.B) {
			tasks := ablationTaskSet()
			var ops int64
			for i := 0; i < b.N; i++ {
				tbl, err := Synthesize(tasks, g)
				if err != nil {
					b.Fatal(err)
				}
				ops = tbl.SynthesisOps
			}
			b.ReportMetric(float64(ops), "ops")
		})
	}
}

// A2: incremental admission vs full resynthesis of the same final set.
func BenchmarkA2IncrementalVsFull(b *testing.B) {
	tasks := ablationTaskSet()
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := NewManager(250 * sim.Microsecond)
			for _, task := range tasks {
				if _, err := m.Admit(task); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Synthesize(tasks, 250*sim.Microsecond); err != nil {
				b.Fatal(err)
			}
		}
	})
}
