package sched

import (
	"fmt"
	"math"

	"dynaplat/internal/sim"
)

// RTAResult holds the response-time analysis outcome for one task.
type RTAResult struct {
	Task     string
	Response sim.Duration
	Deadline sim.Duration
	OK       bool
}

// ResponseTimeAnalysis performs exact response-time analysis for
// preemptive fixed-priority scheduling with deadline-monotonic priority
// assignment. It returns per-task worst-case response times and whether
// every task meets its deadline. This is the priority-based half of the
// RTOS scheduling schemes the paper names in Section 3.1.
func ResponseTimeAnalysis(tasks []Task) ([]RTAResult, bool, error) {
	if err := ValidateSet(tasks); err != nil {
		return nil, false, err
	}
	ordered := append([]Task(nil), tasks...)
	SortByDeadline(ordered)
	results := make([]RTAResult, len(ordered))
	allOK := true
	for i := range ordered {
		ti := &ordered[i]
		d := ti.EffectiveDeadline()
		r := ti.WCET
		for iter := 0; ; iter++ {
			if iter > 10000 || r > 1000*d {
				// Utilization ≥ 1 w.r.t. higher-priority tasks: diverges.
				results[i] = RTAResult{Task: ti.Name, Response: r, Deadline: d, OK: false}
				allOK = false
				break
			}
			next := ti.WCET
			for j := 0; j < i; j++ {
				tj := &ordered[j]
				next += sim.Duration(ceilDiv(int64(r), int64(tj.Period))) * tj.WCET
			}
			if next == r {
				ok := r <= d
				results[i] = RTAResult{Task: ti.Name, Response: r, Deadline: d, OK: ok}
				if !ok {
					allOK = false
				}
				break
			}
			r = next
		}
	}
	return results, allOK, nil
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// LiuLaylandBound returns the classic rate-monotonic utilization bound
// n(2^(1/n)-1) for n tasks: a fast sufficient schedulability test used for
// quick admission pre-checks.
func LiuLaylandBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}

// QuickSchedulable is a cheap sufficient test: utilization below the
// Liu-Layland bound with implicit deadlines. It never returns a false
// positive but may return false for schedulable sets (use RTA then).
func QuickSchedulable(tasks []Task) bool {
	for i := range tasks {
		if tasks[i].EffectiveDeadline() < tasks[i].Period {
			return false // bound only valid for implicit deadlines
		}
	}
	return TotalUtilization(tasks) <= LiuLaylandBound(len(tasks))
}

// EDFSchedulable is the exact test for preemptive EDF with implicit
// deadlines (U ≤ 1); with constrained deadlines it falls back to a
// density-based sufficient test.
func EDFSchedulable(tasks []Task) bool {
	density := 0.0
	for i := range tasks {
		t := &tasks[i]
		d := t.EffectiveDeadline()
		if d <= 0 {
			return false
		}
		if d < t.Period {
			density += float64(t.WCET) / float64(d)
		} else {
			density += t.Utilization()
		}
	}
	return density <= 1.0
}

// String renders an RTA result row.
func (r RTAResult) String() string {
	status := "OK"
	if !r.OK {
		status = "MISS"
	}
	return fmt.Sprintf("%-16s R=%-10v D=%-10v %s", r.Task, r.Response, r.Deadline, status)
}
