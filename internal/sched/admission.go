package sched

import (
	"fmt"

	"dynaplat/internal/sim"
)

// Manager implements the schedule-management framework of the paper's
// reference [21] (Zhang et al., RTCSA'16): when the application set
// changes at runtime, a new time-triggered schedule is synthesized — in
// the backend, not on the ECU — preferring *incremental* synthesis that
// leaves existing slots untouched to minimize disturbance to running
// applications.
type Manager struct {
	granularity sim.Duration
	tasks       []Task
	table       *Table
}

// NewManager creates a schedule manager with the given slot granularity
// (0 selects DefaultGranularity).
func NewManager(granularity sim.Duration) *Manager {
	if granularity <= 0 {
		granularity = DefaultGranularity
	}
	return &Manager{granularity: granularity}
}

// Table returns the current schedule table (nil before the first Install).
func (m *Manager) Table() *Table { return m.table }

// Tasks returns a copy of the currently admitted task set.
func (m *Manager) Tasks() []Task { return append([]Task(nil), m.tasks...) }

// AdmissionResult describes the outcome of admitting a task.
type AdmissionResult struct {
	Admitted bool
	// Incremental reports whether the existing slots were preserved.
	Incremental bool
	// MovedSlots counts pre-existing slots whose position changed
	// (the "disturbance" metric of [21]; 0 for incremental updates).
	MovedSlots int
	// Ops is the synthesis cost in elementary operations.
	Ops int64
	// Reason is set when admission fails.
	Reason string
}

// Admit runs admission control for a new task (Section 5.3's online
// resource management): first a fast utilization pre-check, then an
// incremental synthesis attempt that locks all existing slots, and
// finally a full resynthesis. The previous schedule is kept on failure.
func (m *Manager) Admit(task Task) (AdmissionResult, error) {
	if err := task.Validate(); err != nil {
		return AdmissionResult{Reason: err.Error()}, err
	}
	for i := range m.tasks {
		if m.tasks[i].Name == task.Name {
			err := fmt.Errorf("sched: task %s already admitted", task.Name)
			return AdmissionResult{Reason: err.Error()}, err
		}
	}
	candidate := append(m.Tasks(), task)

	// Fast reject on the necessary condition U ≤ 1. (The density test
	// EDFSchedulable is only sufficient for constrained deadlines and
	// would falsely reject feasible sets, so it is not used here.)
	if TotalUtilization(candidate) > 1.0 {
		return AdmissionResult{Reason: "utilization exceeds 1.0"},
			fmt.Errorf("sched: admission rejected: utilization exceeds 1.0")
	}

	// Incremental attempt: lock every existing slot, place only the new
	// task's jobs into the free gaps.
	if m.table != nil {
		if tbl, ok := m.incremental(task); ok {
			m.tasks = candidate
			m.table = tbl
			return AdmissionResult{Admitted: true, Incremental: true, Ops: tbl.SynthesisOps}, nil
		}
	}

	// Full resynthesis.
	tbl, err := Synthesize(candidate, m.granularity)
	if err != nil {
		return AdmissionResult{Reason: err.Error()},
			fmt.Errorf("sched: admission rejected: %w", err)
	}
	moved := 0
	if m.table != nil {
		moved = disturbance(m.table, tbl)
	}
	m.tasks = candidate
	m.table = tbl
	return AdmissionResult{Admitted: true, MovedSlots: moved, Ops: tbl.SynthesisOps}, nil
}

// Remove drops a task and compacts the schedule by resynthesis. Removal
// cannot fail feasibility.
func (m *Manager) Remove(name string) error {
	idx := -1
	for i := range m.tasks {
		if m.tasks[i].Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("sched: task %s not admitted", name)
	}
	remaining := append(append([]Task(nil), m.tasks[:idx]...), m.tasks[idx+1:]...)
	if len(remaining) == 0 {
		m.tasks, m.table = nil, nil
		return nil
	}
	tbl, err := Synthesize(remaining, m.granularity)
	if err != nil {
		return fmt.Errorf("sched: resynthesis after removal failed: %w", err)
	}
	m.tasks, m.table = remaining, tbl
	return nil
}

// incremental tries to place only the new task into the existing table's
// free time. The resulting table must share a hyperperiod with the old
// one; placement fails when the new period does not divide evenly into a
// bounded hyperperiod or when the gaps do not suffice.
func (m *Manager) incremental(task Task) (*Table, bool) {
	candidate := append(m.Tasks(), task)
	hyper, err := Hyperperiod(candidate, MaxHyperperiod)
	if err != nil {
		return nil, false
	}
	tbl := &Table{Hyperperiod: hyper, Granularity: m.granularity}
	free := newTimeline(hyper)
	// Replicate old slots across the (possibly longer) new hyperperiod.
	reps := int(hyper / m.table.Hyperperiod)
	jobsPerOldHyper := map[string]int{}
	for i := range m.tasks {
		jobsPerOldHyper[m.tasks[i].Name] = int(m.table.Hyperperiod / m.tasks[i].Period)
	}
	for rep := 0; rep < reps; rep++ {
		base := sim.Duration(rep) * m.table.Hyperperiod
		for _, s := range m.table.Slots {
			ns := Slot{Task: s.Task, Job: s.Job + rep*jobsPerOldHyper[s.Task], Start: base + s.Start, End: base + s.End}
			free.reserve(ns)
			tbl.Slots = append(tbl.Slots, ns)
		}
	}
	if err := tbl.placeEDF([]Task{task}, free, true); err != nil {
		return nil, false
	}
	tbl.normalize()
	if err := tbl.Verify(candidate); err != nil {
		return nil, false
	}
	return tbl, true
}

// disturbance counts slots of the old table that are not present at the
// same position in the new one, normalizing for hyperperiod growth.
func disturbance(old, new_ *Table) int {
	pos := map[string]bool{}
	for _, s := range new_.Slots {
		pos[fmt.Sprintf("%s@%d", s.Task, int64(s.Start%old.Hyperperiod))] = true
	}
	moved := 0
	for _, s := range old.Slots {
		if !pos[fmt.Sprintf("%s@%d", s.Task, int64(s.Start))] {
			moved++
		}
	}
	return moved
}

// SynthesisTime converts a synthesis operation count into CPU time at the
// given clock rate, for comparing on-ECU against backend synthesis (E3).
// The constant models ~25 clock cycles per elementary synthesis step.
func SynthesisTime(ops int64, cpuMHz int) sim.Duration {
	if cpuMHz <= 0 {
		cpuMHz = 1
	}
	const cyclesPerOp = 25
	return sim.Duration(ops * cyclesPerOp * 1000 / int64(cpuMHz))
}
