package sched

import (
	"testing"
	"testing/quick"

	"dynaplat/internal/sim"
)

func TestAudsleySimpleSet(t *testing.T) {
	ordered, ok, err := AudsleyAssign(simpleSet())
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if len(ordered) != 3 {
		t.Fatalf("len = %d", len(ordered))
	}
	if err := VerifyAssignment(ordered); err != nil {
		t.Fatal(err)
	}
}

func TestAudsleyRejectsOverload(t *testing.T) {
	tasks := []Task{
		{Name: "a", Period: ms(10), WCET: ms(6)},
		{Name: "b", Period: ms(10), WCET: ms(6)},
	}
	_, ok, err := AudsleyAssign(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("overload assigned")
	}
}

func TestAudsleyValidation(t *testing.T) {
	if _, _, err := AudsleyAssign([]Task{{Name: "", Period: ms(1), WCET: ms(1)}}); err == nil {
		t.Error("invalid set accepted")
	}
}

// The classic OPA win: with release jitter, deadline-monotonic ordering
// fails on sets where a feasible assignment exists.
func TestAudsleyBeatsDMUnderJitter(t *testing.T) {
	// DM ranks A (D=6) above B (D=7). Then B sees R = 3+3 = 6 and with
	// its 4ms jitter misses: 4+6 = 10 > 7. The only feasible order is B
	// on top: B alone responds in 3 (4+3 = 7 ≤ 7), and A at the bottom
	// responds in 6 (one jittered interference hit) = its deadline.
	tasks := []Task{
		{Name: "A", Period: ms(10), WCET: ms(3), Deadline: ms(6)},
		{Name: "B", Period: ms(10), WCET: ms(3), Deadline: ms(7), Jitter: ms(4)},
	}
	dmOK, err := DMSchedulable(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if dmOK {
		t.Fatal("DM unexpectedly passes; counterexample broken")
	}
	ordered, opaOK, err := AudsleyAssign(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !opaOK {
		t.Fatal("OPA failed on feasible set")
	}
	if err := VerifyAssignment(ordered); err != nil {
		t.Fatal(err)
	}
	if ordered[0].Name != "B" {
		t.Errorf("order = %v,%v; want B on top", ordered[0].Name, ordered[1].Name)
	}
}

// Property: whenever DM passes, OPA must too (OPA optimality).
func TestAudsleyDominatesDMProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		periods := []sim.Duration{ms(5), ms(10), ms(20), ms(50)}
		n := rng.Range(2, 5)
		var tasks []Task
		for i := 0; i < n; i++ {
			p := periods[rng.Intn(len(periods))]
			wcet := sim.Duration(rng.Range(1, int(p)/(2*n)))
			d := p - sim.Duration(rng.Intn(int(p)/4))
			if wcet > d {
				wcet = d
			}
			tasks = append(tasks, Task{
				Name: string(rune('a' + i)), Period: p, WCET: wcet,
				Deadline: d, Jitter: sim.Duration(rng.Intn(int(p) / 8)),
			})
		}
		dmOK, err := DMSchedulable(tasks)
		if err != nil {
			return true // vacuous on degenerate sets
		}
		if !dmOK {
			return true
		}
		_, opaOK, err := AudsleyAssign(tasks)
		return err == nil && opaOK
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}

func TestVerifyAssignmentCatchesBadOrder(t *testing.T) {
	// Put the tight-deadline task last: it must fail verification.
	tasks := []Task{
		{Name: "loose", Period: ms(100), WCET: ms(40), Deadline: ms(100)},
		{Name: "tight", Period: ms(50), WCET: ms(5), Deadline: ms(6)},
	}
	bad := []Task{tasks[0], tasks[1]} // loose first = highest
	if err := VerifyAssignment(bad); err == nil {
		t.Error("bad order verified")
	}
	good := []Task{tasks[1], tasks[0]}
	if err := VerifyAssignment(good); err != nil {
		t.Errorf("good order rejected: %v", err)
	}
}
