package sched

import (
	"fmt"
	"sort"

	"dynaplat/internal/sim"
)

// Audsley's optimal priority assignment (OPA). Deadline-monotonic
// ordering is optimal only for synchronous constrained-deadline sets
// without release jitter; once tasks carry jitter (as the paper's model
// explicitly allows, Section 3.1: "fixed execution times and jitters"),
// DM can fail where a feasible assignment exists. OPA assigns priorities
// bottom-up: a task is placed at the lowest unfilled level if it is
// schedulable there assuming every unassigned task is of higher priority;
// this is optimal for any schedulability test that is independent of the
// relative order of higher-priority tasks — which the jitter-aware RTA
// below is.

// rtaAtLevel checks whether task t meets its deadline with hp as the
// (order-independent) set of higher-priority tasks.
func rtaAtLevel(t *Task, hp []*Task) bool {
	d := t.EffectiveDeadline()
	r := t.WCET
	for iter := 0; ; iter++ {
		if iter > 10000 || r > 100*d {
			return false
		}
		next := t.WCET
		for _, h := range hp {
			n := ceilDiv(int64(r+h.Jitter), int64(h.Period))
			if n < 1 {
				n = 1
			}
			next += sim.Duration(n) * h.WCET
		}
		if next == r {
			return t.Jitter+r <= d
		}
		r = next
	}
}

// AudsleyAssign returns the tasks ordered highest-priority-first under an
// optimal priority assignment, or ok=false when no fixed-priority
// assignment passes the jitter-aware RTA.
func AudsleyAssign(tasks []Task) (ordered []Task, ok bool, err error) {
	if err := ValidateSet(tasks); err != nil {
		return nil, false, err
	}
	remaining := make([]*Task, len(tasks))
	for i := range tasks {
		remaining[i] = &tasks[i]
	}
	// Deterministic iteration: sort candidates by name.
	sort.Slice(remaining, func(i, j int) bool { return remaining[i].Name < remaining[j].Name })

	assigned := make([]*Task, len(tasks)) // index 0 = highest priority
	for level := len(tasks) - 1; level >= 0; level-- {
		placed := false
		for idx, cand := range remaining {
			if cand == nil {
				continue
			}
			// Higher-priority set = every other unassigned task.
			var hp []*Task
			for j, other := range remaining {
				if other != nil && j != idx {
					hp = append(hp, other)
				}
			}
			if rtaAtLevel(cand, hp) {
				assigned[level] = cand
				remaining[idx] = nil
				placed = true
				break
			}
		}
		if !placed {
			return nil, false, nil
		}
	}
	out := make([]Task, len(assigned))
	for i, t := range assigned {
		out[i] = *t
	}
	return out, true, nil
}

// DMSchedulable reports whether the deadline-monotonic assignment passes
// the same jitter-aware RTA — for comparing DM against OPA.
func DMSchedulable(tasks []Task) (bool, error) {
	if err := ValidateSet(tasks); err != nil {
		return false, err
	}
	ordered := append([]Task(nil), tasks...)
	SortByDeadline(ordered)
	for i := range ordered {
		var hp []*Task
		for j := 0; j < i; j++ {
			hp = append(hp, &ordered[j])
		}
		if !rtaAtLevel(&ordered[i], hp) {
			return false, nil
		}
	}
	return true, nil
}

// VerifyAssignment re-checks an explicit highest-first priority order
// against the jitter-aware RTA.
func VerifyAssignment(ordered []Task) error {
	for i := range ordered {
		var hp []*Task
		for j := 0; j < i; j++ {
			hp = append(hp, &ordered[j])
		}
		if !rtaAtLevel(&ordered[i], hp) {
			return fmt.Errorf("sched: task %s unschedulable at priority %d",
				ordered[i].Name, i)
		}
	}
	return nil
}
