package model

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dynaplat/internal/sim"
)

// The dynaplat DSL is a line-oriented text format describing a system
// (Section 2.2's call for a set of DSLs covering hardware, interfaces and
// deployment). Example:
//
//	system Demo
//	ecu   CPM1 cpu=400MHz mem=2MB mmu crypto os=rtos cost=40
//	ecu   Head cpu=1000MHz mem=64MB mmu os=posix cost=25
//	network Backbone type=ethernet rate=100Mbps attach=CPM1,Head
//	app   Brake kind=da  asil=D period=10ms wcet=2ms deadline=10ms jitter=500us mem=64KB on=CPM1
//	app   Media kind=nda asil=QM mem=4MB on=Head
//	iface BrakeStatus owner=Brake paradigm=event payload=8B period=10ms latency=5ms net=Backbone
//	bind  Media -> BrakeStatus
//
// '#' starts a comment; blank lines are ignored.

// ParseError reports a DSL syntax or consistency error with its location.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

// Parse reads a system model from DSL text.
func Parse(r io.Reader) (*System, error) {
	sys := NewSystem("")
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	fail := func(format string, args ...any) error {
		return &ParseError{Line: lineNo, Msg: fmt.Sprintf(format, args...)}
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		kw, rest := strings.ToLower(fields[0]), fields[1:]
		var err error
		switch kw {
		case "system":
			if len(rest) != 1 {
				err = fmt.Errorf("system takes exactly one name")
			} else {
				sys.Name = rest[0]
			}
		case "ecu":
			err = parseECU(sys, rest)
		case "network":
			err = parseNetwork(sys, rest)
		case "app":
			err = parseApp(sys, rest)
		case "iface":
			err = parseIface(sys, rest)
		case "bind":
			err = parseBind(sys, rest)
		default:
			err = fmt.Errorf("unknown keyword %q", fields[0])
		}
		if err != nil {
			return nil, fail("%v", err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return sys, nil
}

// ParseString parses a DSL document held in a string.
func ParseString(s string) (*System, error) { return Parse(strings.NewReader(s)) }

// MustParse parses s and panics on error; for tests and examples.
func MustParse(s string) *System {
	sys, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return sys
}

// attrs holds the parsed key=value and bare-flag attributes of one DSL
// line. Maps are allocated lazily and consumed keys are tracked in a
// small slice (attribute counts per line are tiny), which keeps the
// parser — a measurable share of end-to-end simulation setup — from
// allocating three maps per line.
type attrs struct {
	kv    map[string]string
	flags map[string]bool
	used  []string
}

func parseAttrs(fields []string) *attrs {
	a := &attrs{}
	for _, f := range fields {
		if k, v, ok := strings.Cut(f, "="); ok {
			if a.kv == nil {
				a.kv = make(map[string]string, len(fields))
			}
			a.kv[strings.ToLower(k)] = v
		} else {
			if a.flags == nil {
				a.flags = make(map[string]bool, len(fields))
			}
			a.flags[strings.ToLower(f)] = true
		}
	}
	return a
}

func (a *attrs) markUsed(key string) {
	for _, u := range a.used {
		if u == key {
			return
		}
	}
	a.used = append(a.used, key)
}

func (a *attrs) wasUsed(key string) bool {
	for _, u := range a.used {
		if u == key {
			return true
		}
	}
	return false
}

func (a *attrs) str(key string) (string, bool) {
	a.markUsed(key)
	v, ok := a.kv[key]
	return v, ok
}

func (a *attrs) flag(key string) bool {
	a.markUsed(key)
	return a.flags[key]
}

// unknown returns any attribute key that was never consumed, catching typos
// like "perod=10ms".
func (a *attrs) unknown() string {
	for k := range a.kv {
		if !a.wasUsed(k) {
			return k
		}
	}
	for k := range a.flags {
		if !a.wasUsed(k) {
			return k
		}
	}
	return ""
}

func parseECU(sys *System, fields []string) error {
	if len(fields) < 1 {
		return fmt.Errorf("ecu needs a name")
	}
	name := fields[0]
	if sys.ECU(name) != nil {
		return fmt.Errorf("duplicate ecu %q", name)
	}
	a := parseAttrs(fields[1:])
	e := &ECU{Name: name, CPUMHz: ReferenceMHz, MemoryKB: 1024, OS: OSRTOS}
	if v, ok := a.str("cpu"); ok {
		mhz, err := ParseFrequencyMHz(v)
		if err != nil {
			return err
		}
		e.CPUMHz = mhz
	}
	if v, ok := a.str("mem"); ok {
		kb, err := ParseSizeKB(v)
		if err != nil {
			return err
		}
		e.MemoryKB = kb
	}
	if v, ok := a.str("os"); ok {
		switch normalize(v) {
		case "rtos":
			e.OS = OSRTOS
		case "posix", "gpos":
			e.OS = OSPOSIX
		default:
			return fmt.Errorf("unknown os %q", v)
		}
	}
	if v, ok := a.str("cost"); ok {
		c, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("bad cost %q", v)
		}
		e.Cost = c
	}
	e.HasMMU = a.flag("mmu")
	e.HasCryptoHW = a.flag("crypto")
	e.HasGPU = a.flag("gpu")
	if k := a.unknown(); k != "" {
		return fmt.Errorf("ecu %s: unknown attribute %q", name, k)
	}
	sys.ECUs = append(sys.ECUs, e)
	return nil
}

func parseNetwork(sys *System, fields []string) error {
	if len(fields) < 1 {
		return fmt.Errorf("network needs a name")
	}
	name := fields[0]
	if sys.Network(name) != nil {
		return fmt.Errorf("duplicate network %q", name)
	}
	a := parseAttrs(fields[1:])
	n := &Network{Name: name, Kind: NetCAN, BitsPerSecond: 500_000}
	if v, ok := a.str("type"); ok {
		switch normalize(v) {
		case "can":
			n.Kind = NetCAN
		case "flexray":
			n.Kind = NetFlexRay
		case "ethernet", "eth", "tsn":
			n.Kind = NetEthernet
		default:
			return fmt.Errorf("unknown network type %q", v)
		}
	}
	if v, ok := a.str("rate"); ok {
		bps, err := ParseBitRate(v)
		if err != nil {
			return err
		}
		n.BitsPerSecond = bps
	}
	if v, ok := a.str("attach"); ok {
		n.Attached = strings.Split(v, ",")
	}
	if k := a.unknown(); k != "" {
		return fmt.Errorf("network %s: unknown attribute %q", name, k)
	}
	sys.Networks = append(sys.Networks, n)
	return nil
}

func parseApp(sys *System, fields []string) error {
	if len(fields) < 1 {
		return fmt.Errorf("app needs a name")
	}
	name := fields[0]
	if sys.App(name) != nil {
		return fmt.Errorf("duplicate app %q", name)
	}
	a := parseAttrs(fields[1:])
	app := &App{Name: name, Kind: NonDeterministic, MemoryKB: 64, Replicas: 1, Version: 1}
	if v, ok := a.str("kind"); ok {
		switch normalize(v) {
		case "da", "deterministic":
			app.Kind = Deterministic
		case "nda", "nondeterministic":
			app.Kind = NonDeterministic
		default:
			return fmt.Errorf("unknown app kind %q", v)
		}
	}
	if v, ok := a.str("asil"); ok {
		asil, err := ParseASIL(v)
		if err != nil {
			return err
		}
		app.ASIL = asil
	}
	var err error
	if app.Period, err = durAttr(a, "period"); err != nil {
		return err
	}
	if app.WCET, err = durAttr(a, "wcet"); err != nil {
		return err
	}
	if app.Deadline, err = durAttr(a, "deadline"); err != nil {
		return err
	}
	if app.Jitter, err = durAttr(a, "jitter"); err != nil {
		return err
	}
	if v, ok := a.str("mem"); ok {
		kb, err := ParseSizeKB(v)
		if err != nil {
			return err
		}
		app.MemoryKB = kb
	}
	if v, ok := a.str("replicas"); ok {
		r, err := strconv.Atoi(v)
		if err != nil || r < 1 {
			return fmt.Errorf("bad replicas %q", v)
		}
		app.Replicas = r
	}
	if v, ok := a.str("candidates"); ok {
		app.Candidates = strings.Split(v, ",")
	}
	app.NeedsGPU = a.flag("gpu")
	app.NeedsCrypto = a.flag("crypto")
	if v, ok := a.str("on"); ok {
		sys.Placement[name] = v
	}
	if app.Kind == Deterministic && app.Deadline == 0 {
		app.Deadline = app.Period // implicit deadline
	}
	if k := a.unknown(); k != "" {
		return fmt.Errorf("app %s: unknown attribute %q", name, k)
	}
	sys.Apps = append(sys.Apps, app)
	return nil
}

func parseIface(sys *System, fields []string) error {
	if len(fields) < 1 {
		return fmt.Errorf("iface needs a name")
	}
	name := fields[0]
	if sys.Interface(name) != nil {
		return fmt.Errorf("duplicate iface %q", name)
	}
	a := parseAttrs(fields[1:])
	ifc := &Interface{Name: name, Paradigm: Event, PayloadBytes: 8, Version: 1}
	if v, ok := a.str("owner"); ok {
		ifc.Owner = v
	} else {
		return fmt.Errorf("iface %s: missing owner", name)
	}
	if v, ok := a.str("paradigm"); ok {
		p, err := ParseParadigm(v)
		if err != nil {
			return err
		}
		ifc.Paradigm = p
	}
	if v, ok := a.str("payload"); ok {
		b, err := ParseSizeBytes(v)
		if err != nil {
			return err
		}
		ifc.PayloadBytes = b
	}
	var err error
	if ifc.Period, err = durAttr(a, "period"); err != nil {
		return err
	}
	if ifc.LatencyBound, err = durAttr(a, "latency"); err != nil {
		return err
	}
	if ifc.JitterBound, err = durAttr(a, "jitter"); err != nil {
		return err
	}
	if v, ok := a.str("rate"); ok {
		bps, err := ParseBitRate(v)
		if err != nil {
			return err
		}
		ifc.BitsPerSecond = bps
	}
	if v, ok := a.str("net"); ok {
		ifc.Network = v
	}
	if k := a.unknown(); k != "" {
		return fmt.Errorf("iface %s: unknown attribute %q", name, k)
	}
	sys.Interfaces = append(sys.Interfaces, ifc)
	return nil
}

func parseBind(sys *System, fields []string) error {
	// Accept "Client -> Interface" and "Client->Interface".
	joined := strings.Join(fields, " ")
	client, iface, ok := strings.Cut(joined, "->")
	if !ok {
		return fmt.Errorf("bind syntax is: bind <client> -> <interface>")
	}
	client, iface = strings.TrimSpace(client), strings.TrimSpace(iface)
	if client == "" || iface == "" {
		return fmt.Errorf("bind needs both client and interface")
	}
	sys.Bindings = append(sys.Bindings, Binding{Client: client, Interface: iface})
	return nil
}

func durAttr(a *attrs, key string) (sim.Duration, error) {
	v, ok := a.str(key)
	if !ok {
		return 0, nil
	}
	d, err := ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("%s: %v", key, err)
	}
	return d, nil
}

func normalize(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

// ParseDuration parses "10ms", "500us", "1s", "250ns" into a virtual-time
// duration.
func ParseDuration(s string) (sim.Duration, error) {
	num, unit := splitUnit(s)
	mult := sim.Duration(0)
	switch strings.ToLower(unit) {
	case "ns":
		mult = sim.Nanosecond
	case "us", "µs":
		mult = sim.Microsecond
	case "ms":
		mult = sim.Millisecond
	case "s":
		mult = sim.Second
	default:
		return 0, fmt.Errorf("bad duration %q (want ns/us/ms/s)", s)
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	return sim.Duration(f * float64(mult)), nil
}

// ParseSizeKB parses "64KB", "2MB", "512B" into kilobytes (rounding up).
func ParseSizeKB(s string) (int, error) {
	b, err := ParseSizeBytes(s)
	if err != nil {
		return 0, err
	}
	return (b + 1023) / 1024, nil
}

// ParseSizeBytes parses "8B", "64KB", "2MB" into bytes.
func ParseSizeBytes(s string) (int, error) {
	num, unit := splitUnit(s)
	mult := 0
	switch strings.ToUpper(unit) {
	case "B", "":
		mult = 1
	case "KB":
		mult = 1024
	case "MB":
		mult = 1024 * 1024
	default:
		return 0, fmt.Errorf("bad size %q (want B/KB/MB)", s)
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return int(f * float64(mult)), nil
}

// ParseBitRate parses "500kbps", "100Mbps", "1Gbps" into bits per second.
func ParseBitRate(s string) (int64, error) {
	num, unit := splitUnit(s)
	var mult int64
	switch strings.ToLower(unit) {
	case "bps":
		mult = 1
	case "kbps":
		mult = 1_000
	case "mbps":
		mult = 1_000_000
	case "gbps":
		mult = 1_000_000_000
	default:
		return 0, fmt.Errorf("bad bit rate %q (want bps/kbps/Mbps/Gbps)", s)
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("bad bit rate %q", s)
	}
	return int64(f * float64(mult)), nil
}

// ParseFrequencyMHz parses "200MHz", "1GHz" into MHz.
func ParseFrequencyMHz(s string) (int, error) {
	num, unit := splitUnit(s)
	mult := 0.0
	switch strings.ToLower(unit) {
	case "mhz":
		mult = 1
	case "ghz":
		mult = 1000
	default:
		return 0, fmt.Errorf("bad frequency %q (want MHz/GHz)", s)
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil || f <= 0 {
		return 0, fmt.Errorf("bad frequency %q", s)
	}
	return int(f * mult), nil
}

func splitUnit(s string) (num, unit string) {
	s = strings.TrimSpace(s)
	i := len(s)
	for i > 0 {
		c := s[i-1]
		if (c >= '0' && c <= '9') || c == '.' {
			break
		}
		i--
	}
	return s[:i], s[i:]
}
