package model

import (
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	s := demo(t)
	data, err := MarshalJSONSystem(s)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := UnmarshalJSONSystem(data)
	if err != nil {
		t.Fatal(err)
	}
	// Round trip must preserve the DSL rendering exactly.
	if Format(s) != Format(s2) {
		t.Errorf("JSON round trip lost data:\n%s\nvs\n%s", Format(s), Format(s2))
	}
	// And the validation verdict.
	if Validate(s).OK() != Validate(s2).OK() {
		t.Error("validation verdict changed")
	}
}

func TestJSONStableEncoding(t *testing.T) {
	s := demo(t)
	a, _ := MarshalJSONSystem(s)
	b, _ := MarshalJSONSystem(s)
	if string(a) != string(b) {
		t.Error("encoding not deterministic")
	}
	if !strings.Contains(string(a), `"name": "Demo"`) {
		t.Errorf("unexpected encoding: %.120s", a)
	}
}

func TestJSONBadInput(t *testing.T) {
	if _, err := UnmarshalJSONSystem([]byte(`{bad`)); err == nil {
		t.Error("bad JSON accepted")
	}
	// Empty object yields an empty, usable system.
	s, err := UnmarshalJSONSystem([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Placement == nil {
		t.Error("nil placement map")
	}
}
