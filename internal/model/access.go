package model

import (
	"fmt"
	"sort"
	"strings"
)

// AccessMatrix is the access-control model the paper's Section 4.2 asks to
// extract automatically from the system model: which client may access
// which service interface. It is consumed by the security/auth package at
// binding time and can be checked at integration time.
type AccessMatrix struct {
	// allowed maps interface name → set of permitted client app names.
	allowed map[string]map[string]bool
	// wildcard clients (e.g. a data logger) may access every interface;
	// the paper flags these as needing special scrutiny.
	wildcards map[string]bool
}

// ExtractAccessMatrix derives the access matrix from the model's declared
// bindings: exactly the declared client/interface pairs are authorized.
func ExtractAccessMatrix(s *System) *AccessMatrix {
	m := &AccessMatrix{allowed: map[string]map[string]bool{}, wildcards: map[string]bool{}}
	for _, i := range s.Interfaces {
		m.allowed[i.Name] = map[string]bool{}
	}
	for _, b := range s.Bindings {
		set, ok := m.allowed[b.Interface]
		if !ok {
			set = map[string]bool{}
			m.allowed[b.Interface] = set
		}
		set[b.Client] = true
	}
	return m
}

// Allow authorizes client to access iface (runtime permission adjustment,
// Section 4.2).
func (m *AccessMatrix) Allow(client, iface string) {
	set, ok := m.allowed[iface]
	if !ok {
		set = map[string]bool{}
		m.allowed[iface] = set
	}
	set[client] = true
}

// Revoke removes an authorization.
func (m *AccessMatrix) Revoke(client, iface string) {
	if set, ok := m.allowed[iface]; ok {
		delete(set, client)
	}
}

// GrantWildcard authorizes client for every interface (data-logger case).
func (m *AccessMatrix) GrantWildcard(client string) { m.wildcards[client] = true }

// RevokeWildcard removes a wildcard grant.
func (m *AccessMatrix) RevokeWildcard(client string) { delete(m.wildcards, client) }

// Allowed reports whether client may access iface.
func (m *AccessMatrix) Allowed(client, iface string) bool {
	if m.wildcards[client] {
		return true
	}
	return m.allowed[iface][client]
}

// Wildcards returns the sorted wildcard clients, which security review
// should scrutinize (Section 4.2).
func (m *AccessMatrix) Wildcards() []string {
	out := make([]string, 0, len(m.wildcards))
	for c := range m.wildcards {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Clients returns the sorted clients authorized for iface (excluding
// wildcards).
func (m *AccessMatrix) Clients(iface string) []string {
	var out []string
	for c := range m.allowed[iface] {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// String renders the matrix deterministically, one interface per line.
func (m *AccessMatrix) String() string {
	ifaces := make([]string, 0, len(m.allowed))
	for i := range m.allowed {
		ifaces = append(ifaces, i)
	}
	sort.Strings(ifaces)
	var sb strings.Builder
	for _, i := range ifaces {
		fmt.Fprintf(&sb, "%s: %s\n", i, strings.Join(m.Clients(i), ","))
	}
	if len(m.wildcards) > 0 {
		fmt.Fprintf(&sb, "*: %s\n", strings.Join(m.Wildcards(), ","))
	}
	return sb.String()
}
