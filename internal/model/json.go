package model

import (
	"encoding/json"
	"fmt"
)

// JSON interchange for the system model, so external tooling (CI
// pipelines, dashboards) can consume and produce configurations without
// speaking the DSL. The encoding is stable and round-trips losslessly.

// jsonSystem mirrors System with exported, tagged fields.
type jsonSystem struct {
	Name       string            `json:"name"`
	ECUs       []*ECU            `json:"ecus,omitempty"`
	Networks   []*Network        `json:"networks,omitempty"`
	Apps       []*App            `json:"apps,omitempty"`
	Interfaces []*Interface      `json:"interfaces,omitempty"`
	Bindings   []Binding         `json:"bindings,omitempty"`
	Placement  map[string]string `json:"placement,omitempty"`
}

// MarshalJSONSystem encodes the system as deterministic, indented JSON.
func MarshalJSONSystem(s *System) ([]byte, error) {
	return json.MarshalIndent(jsonSystem{
		Name:       s.Name,
		ECUs:       s.ECUs,
		Networks:   s.Networks,
		Apps:       s.Apps,
		Interfaces: s.Interfaces,
		Bindings:   s.Bindings,
		Placement:  s.Placement,
	}, "", "  ")
}

// UnmarshalJSONSystem decodes a system from JSON.
func UnmarshalJSONSystem(data []byte) (*System, error) {
	var js jsonSystem
	if err := json.Unmarshal(data, &js); err != nil {
		return nil, fmt.Errorf("model: bad JSON: %w", err)
	}
	s := NewSystem(js.Name)
	s.ECUs = js.ECUs
	s.Networks = js.Networks
	s.Apps = js.Apps
	s.Interfaces = js.Interfaces
	s.Bindings = js.Bindings
	if js.Placement != nil {
		s.Placement = js.Placement
	}
	return s, nil
}
