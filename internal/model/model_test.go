package model

import (
	"strings"
	"testing"

	"dynaplat/internal/sim"
)

const demoDSL = `
# demo vehicle
system Demo
ecu CPM1 cpu=400MHz mem=2MB mmu crypto os=rtos cost=40
ecu Head cpu=1000MHz mem=64MB mmu os=posix cost=25
ecu Zone1 cpu=200MHz mem=512KB mmu os=rtos cost=12
network Backbone type=ethernet rate=100Mbps attach=CPM1,Head,Zone1
network Body type=can rate=500kbps attach=CPM1,Zone1
app Brake kind=da asil=D period=10ms wcet=2ms deadline=10ms jitter=500us mem=64KB on=CPM1
app Suspension kind=da asil=C period=5ms wcet=1ms mem=64KB on=Zone1
app Media kind=nda asil=QM mem=4MB on=Head
iface BrakeStatus owner=Brake paradigm=event payload=8B period=10ms latency=5ms net=Backbone
iface MediaControl owner=Media paradigm=message payload=64B period=100ms net=Backbone
bind Media -> BrakeStatus
bind Suspension -> BrakeStatus
`

func demo(t *testing.T) *System {
	t.Helper()
	s, err := ParseString(demoDSL)
	if err != nil {
		t.Fatalf("parse demo: %v", err)
	}
	return s
}

func TestParseDemo(t *testing.T) {
	s := demo(t)
	if s.Name != "Demo" {
		t.Errorf("name = %q", s.Name)
	}
	if len(s.ECUs) != 3 || len(s.Networks) != 2 || len(s.Apps) != 3 ||
		len(s.Interfaces) != 2 || len(s.Bindings) != 2 {
		t.Fatalf("counts: %d ecus %d nets %d apps %d ifaces %d binds",
			len(s.ECUs), len(s.Networks), len(s.Apps), len(s.Interfaces), len(s.Bindings))
	}
	brake := s.App("Brake")
	if brake.Kind != Deterministic || brake.ASIL != ASILD {
		t.Errorf("brake = %+v", brake)
	}
	if brake.Period != 10*sim.Millisecond || brake.WCET != 2*sim.Millisecond {
		t.Errorf("brake timing = %v/%v", brake.Period, brake.WCET)
	}
	if brake.Jitter != 500*sim.Microsecond {
		t.Errorf("brake jitter = %v", brake.Jitter)
	}
	cpm := s.ECU("CPM1")
	if cpm.CPUMHz != 400 || !cpm.HasMMU || !cpm.HasCryptoHW || cpm.OS != OSRTOS {
		t.Errorf("cpm = %+v", cpm)
	}
	if cpm.MemoryKB != 2048 {
		t.Errorf("cpm mem = %d", cpm.MemoryKB)
	}
	if s.Placement["Brake"] != "CPM1" {
		t.Errorf("placement = %v", s.Placement)
	}
	bb := s.Network("Backbone")
	if bb.Kind != NetEthernet || bb.BitsPerSecond != 100_000_000 {
		t.Errorf("backbone = %+v", bb)
	}
	if !bb.Attaches("Head") || bb.Attaches("Nope") {
		t.Error("Attaches wrong")
	}
}

func TestImplicitDeadline(t *testing.T) {
	s := MustParse("app X kind=da period=4ms wcet=1ms")
	if d := s.App("X").Deadline; d != 4*sim.Millisecond {
		t.Errorf("implicit deadline = %v, want 4ms", d)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ dsl, wantSub string }{
		{"ecu", "needs a name"},
		{"ecu A cpu=fast", "bad frequency"},
		{"ecu A\necu A", "duplicate ecu"},
		{"ecu A typo=1", "unknown attribute"},
		{"app A kind=da perod=10ms", "unknown attribute"},
		{"app A kind=wat", "unknown app kind"},
		{"app A asil=E", "unknown ASIL"},
		{"iface I paradigm=event", "missing owner"},
		{"iface I owner=A paradigm=blob", "unknown paradigm"},
		{"bind A B", "bind syntax"},
		{"frobnicate yes", "unknown keyword"},
		{"network N rate=fast", "bad bit rate"},
		{"app A period=10parsecs", "bad duration"},
	}
	for _, c := range cases {
		_, err := ParseString(c.dsl)
		if err == nil {
			t.Errorf("ParseString(%q) succeeded, want error containing %q", c.dsl, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseString(%q) error = %v, want substring %q", c.dsl, err, c.wantSub)
		}
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := ParseString("system A\n\necu B cpu=bogus")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("err = %T", err)
	}
	if pe.Line != 3 {
		t.Errorf("line = %d, want 3", pe.Line)
	}
}

func TestUnitParsers(t *testing.T) {
	if d, err := ParseDuration("1.5ms"); err != nil || d != 1500*sim.Microsecond {
		t.Errorf("1.5ms = %v, %v", d, err)
	}
	if b, err := ParseSizeBytes("2KB"); err != nil || b != 2048 {
		t.Errorf("2KB = %v, %v", b, err)
	}
	if kb, err := ParseSizeKB("512B"); err != nil || kb != 1 {
		t.Errorf("512B = %vKB, %v", kb, err)
	}
	if r, err := ParseBitRate("1Gbps"); err != nil || r != 1_000_000_000 {
		t.Errorf("1Gbps = %v, %v", r, err)
	}
	if f, err := ParseFrequencyMHz("1GHz"); err != nil || f != 1000 {
		t.Errorf("1GHz = %v, %v", f, err)
	}
	for _, bad := range []string{"", "ms", "-5ms", "10"} {
		if _, err := ParseDuration(bad); err == nil {
			t.Errorf("ParseDuration(%q) succeeded", bad)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	s := demo(t)
	s2, err := ParseString(Format(s))
	if err != nil {
		t.Fatalf("re-parse formatted: %v", err)
	}
	if Format(s) != Format(s2) {
		t.Errorf("round trip not stable:\n%s\nvs\n%s", Format(s), Format(s2))
	}
	if len(s2.Apps) != len(s.Apps) || s2.App("Brake").Period != s.App("Brake").Period {
		t.Error("round trip lost data")
	}
}

func TestValidateDemoOK(t *testing.T) {
	r := Validate(demo(t))
	if !r.OK() {
		t.Fatalf("demo should validate; findings: %v", r.Findings)
	}
}

func findRule(r *Report, rule string) *Finding {
	for i := range r.Findings {
		if r.Findings[i].Rule == rule {
			return &r.Findings[i]
		}
	}
	return nil
}

func TestValidateCatches(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*System)
		rule   string
	}{
		{"unknown ecu placement", func(s *System) { s.Placement["Brake"] = "Nope" }, "placement/unknown-ecu"},
		{"da on posix", func(s *System) { s.Placement["Brake"] = "Head" }, "placement/da-needs-rtos"},
		{"memory overcommit", func(s *System) { s.App("Media").MemoryKB = 1 << 30 }, "resources/memory"},
		{"cpu overcommit", func(s *System) { s.App("Brake").WCET = 500 * sim.Millisecond }, "resources/cpu"},
		{"asil dependency", func(s *System) {
			// Make ASIL-D Brake depend on QM Media's interface.
			s.Bindings = append(s.Bindings, Binding{Client: "Brake", Interface: "MediaControl"})
		}, "safety/asil-dependency"},
		{"unknown iface owner", func(s *System) { s.Interface("BrakeStatus").Owner = "Ghost" }, "iface/unknown-owner"},
		{"unknown binding client", func(s *System) {
			s.Bindings = append(s.Bindings, Binding{Client: "Ghost", Interface: "BrakeStatus"})
		}, "bind/unknown-client"},
		{"cross-ecu without network", func(s *System) { s.Interface("BrakeStatus").Network = "" }, "comms/needs-network"},
		{"unreachable network", func(s *System) {
			// Body attaches only CPM1 and Zone1; Media sits on Head.
			s.Interface("BrakeStatus").Network = "Body"
		}, "comms/unreachable"},
		{"bandwidth overload", func(s *System) {
			s.Interface("BrakeStatus").PayloadBytes = 80000
			s.Interface("BrakeStatus").Period = sim.Millisecond
			s.Interface("BrakeStatus").LatencyBound = 0
		}, "comms/bandwidth"},
		{"latency infeasible", func(s *System) {
			s.Interface("BrakeStatus").LatencyBound = 100 * sim.Nanosecond
		}, "comms/latency-infeasible"},
		{"wcet exceeds deadline", func(s *System) {
			s.App("Suspension").WCET = 6 * sim.Millisecond
			s.App("Suspension").Deadline = 5 * sim.Millisecond
		}, "timing/wcet-gt-deadline"},
		{"da missing period", func(s *System) { s.App("Brake").Period = 0 }, "timing/no-period"},
		{"replicas exceed ecus", func(s *System) {
			s.App("Brake").Replicas = 2
			s.App("Brake").Candidates = []string{"CPM1"}
		}, "redundancy/too-few-ecus"},
		{"outside candidates", func(s *System) {
			s.App("Brake").Candidates = []string{"Zone1"}
		}, "placement/outside-candidates"},
		{"needs gpu", func(s *System) { s.App("Brake").NeedsGPU = true }, "placement/needs-gpu"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := demo(t)
			c.mutate(s)
			r := Validate(s)
			if f := findRule(r, c.rule); f == nil {
				t.Errorf("expected finding %q; got %v", c.rule, r.Findings)
			}
		})
	}
}

func TestValidateMixedCriticalityNeedsMMU(t *testing.T) {
	s := MustParse(`
ecu E cpu=200MHz mem=10MB os=rtos
app HighCrit kind=da asil=D period=10ms wcet=1ms mem=1KB on=E
app LowCrit kind=nda asil=QM mem=1KB on=E
`)
	r := Validate(s)
	if findRule(r, "placement/mixed-needs-mmu") == nil {
		t.Errorf("expected mixed-needs-mmu; got %v", r.Findings)
	}
}

func TestValidateUnplacedAppSkipped(t *testing.T) {
	s := MustParse(`
ecu E cpu=200MHz mem=1MB mmu os=rtos
app Floating kind=da asil=B period=10ms wcet=1ms mem=64KB
`)
	r := Validate(s)
	if !r.OK() {
		t.Errorf("unplaced app should not produce placement errors: %v", r.Errors())
	}
}

func TestScaledWCET(t *testing.T) {
	e := &ECU{CPUMHz: 200}
	if w := e.ScaledWCET(10 * sim.Millisecond); w != 5*sim.Millisecond {
		t.Errorf("scaled = %v, want 5ms", w)
	}
	slow := &ECU{CPUMHz: 50}
	if w := slow.ScaledWCET(10 * sim.Millisecond); w != 20*sim.Millisecond {
		t.Errorf("scaled = %v, want 20ms", w)
	}
}

func TestUtilizationAndMemory(t *testing.T) {
	s := demo(t)
	cpm := s.ECU("CPM1")
	// Brake: 2ms WCET @100MHz ref → 0.5ms at 400MHz, period 10ms → 0.05
	if u := s.ECUUtilization(cpm); u < 0.049 || u > 0.051 {
		t.Errorf("utilization = %v, want 0.05", u)
	}
	if m := s.ECUMemoryUse(cpm); m != 64 {
		t.Errorf("memory = %v, want 64", m)
	}
}

func TestClone(t *testing.T) {
	s := demo(t)
	c := s.Clone()
	c.Placement["Brake"] = "Head"
	c.App("Brake").WCET = 0
	c.Network("Body").Attached[0] = "X"
	if s.Placement["Brake"] != "CPM1" || s.App("Brake").WCET == 0 ||
		s.Network("Body").Attached[0] != "CPM1" {
		t.Error("Clone shares state with original")
	}
}

func TestAccessMatrix(t *testing.T) {
	s := demo(t)
	m := ExtractAccessMatrix(s)
	if !m.Allowed("Media", "BrakeStatus") {
		t.Error("declared binding not allowed")
	}
	if m.Allowed("Media", "MediaControl") {
		t.Error("undeclared binding allowed")
	}
	m.Allow("Media", "MediaControl")
	if !m.Allowed("Media", "MediaControl") {
		t.Error("Allow did not take effect")
	}
	m.Revoke("Media", "MediaControl")
	if m.Allowed("Media", "MediaControl") {
		t.Error("Revoke did not take effect")
	}
	m.GrantWildcard("Logger")
	if !m.Allowed("Logger", "BrakeStatus") || !m.Allowed("Logger", "MediaControl") {
		t.Error("wildcard not honored")
	}
	if ws := m.Wildcards(); len(ws) != 1 || ws[0] != "Logger" {
		t.Errorf("wildcards = %v", ws)
	}
	m.RevokeWildcard("Logger")
	if m.Allowed("Logger", "BrakeStatus") {
		t.Error("RevokeWildcard did not take effect")
	}
	clients := m.Clients("BrakeStatus")
	if len(clients) != 2 || clients[0] != "Media" || clients[1] != "Suspension" {
		t.Errorf("clients = %v", clients)
	}
	if !strings.Contains(m.String(), "BrakeStatus: Media,Suspension") {
		t.Errorf("String() = %q", m.String())
	}
}

func TestNominalBitsPerSecond(t *testing.T) {
	ev := &Interface{Paradigm: Event, PayloadBytes: 8, Period: 10 * sim.Millisecond}
	if bps := ev.NominalBitsPerSecond(); bps != 6400 {
		t.Errorf("event bps = %v, want 6400", bps)
	}
	msg := &Interface{Paradigm: Message, PayloadBytes: 8, Period: 10 * sim.Millisecond}
	if bps := msg.NominalBitsPerSecond(); bps != 12800 {
		t.Errorf("message bps = %v, want 12800 (two-way)", bps)
	}
	st := &Interface{Paradigm: Stream, BitsPerSecond: 1_000_000}
	if bps := st.NominalBitsPerSecond(); bps != 1e6 {
		t.Errorf("stream bps = %v", bps)
	}
}

func TestSameNetwork(t *testing.T) {
	s := demo(t)
	if n := s.SameNetwork("CPM1", "Zone1"); n != "Backbone" && n != "Body" {
		t.Errorf("SameNetwork = %q", n)
	}
	if n := s.SameNetwork("Head", "Head2"); n != "" {
		t.Errorf("SameNetwork nonexistent = %q", n)
	}
}
