package model

import (
	"fmt"
	"strings"

	"dynaplat/internal/sim"
)

// Format renders the system back into DSL text. Parse(Format(s)) yields an
// equivalent system, which tooling uses to persist DSE results.
func Format(s *System) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "system %s\n", s.Name)
	for _, e := range s.ECUs {
		fmt.Fprintf(&sb, "ecu %s cpu=%dMHz mem=%dKB os=%s cost=%d", e.Name, e.CPUMHz, e.MemoryKB, e.OS, e.Cost)
		if e.HasMMU {
			sb.WriteString(" mmu")
		}
		if e.HasCryptoHW {
			sb.WriteString(" crypto")
		}
		if e.HasGPU {
			sb.WriteString(" gpu")
		}
		sb.WriteByte('\n')
	}
	for _, n := range s.Networks {
		fmt.Fprintf(&sb, "network %s type=%s rate=%dbps", n.Name, n.Kind, n.BitsPerSecond)
		if len(n.Attached) > 0 {
			fmt.Fprintf(&sb, " attach=%s", strings.Join(n.Attached, ","))
		}
		sb.WriteByte('\n')
	}
	for _, a := range s.Apps {
		fmt.Fprintf(&sb, "app %s kind=%s asil=%s mem=%dKB", a.Name, a.Kind, a.ASIL, a.MemoryKB)
		writeDur(&sb, "period", a.Period)
		writeDur(&sb, "wcet", a.WCET)
		writeDur(&sb, "deadline", a.Deadline)
		writeDur(&sb, "jitter", a.Jitter)
		if a.Replicas > 1 {
			fmt.Fprintf(&sb, " replicas=%d", a.Replicas)
		}
		if len(a.Candidates) > 0 {
			fmt.Fprintf(&sb, " candidates=%s", strings.Join(a.Candidates, ","))
		}
		if a.NeedsGPU {
			sb.WriteString(" gpu")
		}
		if a.NeedsCrypto {
			sb.WriteString(" crypto")
		}
		if ecu, ok := s.Placement[a.Name]; ok {
			fmt.Fprintf(&sb, " on=%s", ecu)
		}
		sb.WriteByte('\n')
	}
	for _, i := range s.Interfaces {
		fmt.Fprintf(&sb, "iface %s owner=%s paradigm=%s payload=%dB", i.Name, i.Owner, i.Paradigm, i.PayloadBytes)
		writeDur(&sb, "period", i.Period)
		writeDur(&sb, "latency", i.LatencyBound)
		writeDur(&sb, "jitter", i.JitterBound)
		if i.BitsPerSecond > 0 {
			fmt.Fprintf(&sb, " rate=%dbps", i.BitsPerSecond)
		}
		if i.Network != "" {
			fmt.Fprintf(&sb, " net=%s", i.Network)
		}
		sb.WriteByte('\n')
	}
	for _, b := range s.Bindings {
		fmt.Fprintf(&sb, "bind %s -> %s\n", b.Client, b.Interface)
	}
	return sb.String()
}

func writeDur(sb *strings.Builder, key string, d sim.Duration) {
	if d > 0 {
		fmt.Fprintf(sb, " %s=%dns", key, int64(d))
	}
}
