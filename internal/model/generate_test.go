package model

import (
	"fmt"
	"testing"

	"dynaplat/internal/sim"
)

// fingerprint renders the generated system canonically for comparison.
func fingerprint(s *System) string {
	out := fmt.Sprintf("system %s\n", s.Name)
	for _, e := range s.ECUs {
		out += fmt.Sprintf("ecu %s cpu=%d mem=%d\n", e.Name, e.CPUMHz, e.MemoryKB)
	}
	for _, n := range s.Networks {
		out += fmt.Sprintf("net %s kind=%v rate=%d attach=%v\n", n.Name, n.Kind, n.BitsPerSecond, n.Attached)
	}
	for _, a := range s.Apps {
		out += fmt.Sprintf("app %s kind=%v asil=%v period=%v wcet=%v mem=%d on=%s\n",
			a.Name, a.Kind, a.ASIL, a.Period, a.WCET, a.MemoryKB, s.Placement[a.Name])
	}
	for _, i := range s.Interfaces {
		out += fmt.Sprintf("iface %s owner=%s payload=%d\n", i.Name, i.Owner, i.PayloadBytes)
	}
	return out
}

func TestGenerateVariantDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a := GenerateVariant(sim.NewRNG(seed), "veh", VariantConfig{})
		b := GenerateVariant(sim.NewRNG(seed), "veh", VariantConfig{})
		if fingerprint(a) != fingerprint(b) {
			t.Fatalf("seed %d: identical seeds produced different variants:\n%s\nvs\n%s",
				seed, fingerprint(a), fingerprint(b))
		}
	}
}

func TestGenerateVariantValidAndHeterogeneous(t *testing.T) {
	seenECUs := map[int]bool{}
	seenKinds := map[NetworkKind]bool{}
	for seed := uint64(0); seed < 200; seed++ {
		sys := GenerateVariant(sim.NewRNG(seed), fmt.Sprintf("veh-%d", seed), VariantConfig{})
		if rep := Validate(sys); !rep.OK() {
			t.Fatalf("seed %d: generated variant invalid: %v", seed, rep.Errors())
		}
		if sys.App(OTATargetApp) == nil {
			t.Fatalf("seed %d: no OTA target app", seed)
		}
		seenECUs[len(sys.ECUs)] = true
		seenKinds[sys.Networks[0].Kind] = true

		// Schedulability and update headroom by construction.
		for _, e := range sys.ECUs {
			if u := sys.ECUUtilization(e); u >= 0.8 {
				t.Errorf("seed %d: ECU %s utilization %.2f too high", seed, e.Name, u)
			}
		}
		cpm0 := sys.ECU(sys.Placement[OTATargetApp])
		if free := cpm0.MemoryKB - sys.ECUMemoryUse(cpm0); free < sys.App(OTATargetApp).MemoryKB {
			t.Errorf("seed %d: no staged-update memory headroom on %s (free %dKB)",
				seed, cpm0.Name, free)
		}
	}
	if len(seenECUs) < 3 {
		t.Errorf("ECU-count diversity too low: %v", seenECUs)
	}
	if len(seenKinds) < 2 {
		t.Errorf("bus-topology diversity too low: %v", seenKinds)
	}
}
