package model

import (
	"fmt"
	"sort"
)

// Severity classifies a validation finding.
type Severity int

const (
	// Warning findings do not make the model invalid but deserve review.
	Warning Severity = iota
	// Error findings make the deployment unsafe or inconsistent.
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Finding is one verification-engine result.
type Finding struct {
	Severity Severity
	// Rule is a stable identifier, e.g. "placement/unknown-ecu".
	Rule string
	// Subject names the model element the finding is about.
	Subject string
	Msg     string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s [%s] %s: %s", f.Severity, f.Rule, f.Subject, f.Msg)
}

// Report collects validation findings.
type Report struct {
	Findings []Finding
}

// OK reports whether the model has no error-severity findings.
func (r *Report) OK() bool {
	for _, f := range r.Findings {
		if f.Severity == Error {
			return false
		}
	}
	return true
}

// Errors returns only the error-severity findings.
func (r *Report) Errors() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Severity == Error {
			out = append(out, f)
		}
	}
	return out
}

func (r *Report) add(sev Severity, rule, subject, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{
		Severity: sev, Rule: rule, Subject: subject, Msg: fmt.Sprintf(format, args...),
	})
}

// Validate runs the verification engine (Section 2.2: "an attached
// verification engine should ensure that the interconnections and
// deployment mappings fulfill the defined requirements"). It checks
// referential integrity, resource budgets, placement constraints, the
// ASIL dependency rule, paradigm ownership conventions, and communication
// capacity. Placement-dependent rules are skipped for unplaced apps so
// that partially-specified models (DSE inputs) validate cleanly.
func Validate(s *System) *Report {
	r := &Report{}
	validateRefs(s, r)
	validatePlacement(s, r)
	validateResources(s, r)
	validateTiming(s, r)
	validateSafety(s, r)
	validateComms(s, r)
	return r
}

func validateRefs(s *System, r *Report) {
	for _, n := range s.Networks {
		for _, e := range n.Attached {
			if s.ECU(e) == nil {
				r.add(Error, "network/unknown-ecu", n.Name, "attaches unknown ECU %q", e)
			}
		}
		if n.BitsPerSecond <= 0 {
			r.add(Error, "network/zero-rate", n.Name, "bit rate must be positive")
		}
	}
	for _, i := range s.Interfaces {
		if s.App(i.Owner) == nil {
			r.add(Error, "iface/unknown-owner", i.Name, "owned by unknown app %q", i.Owner)
		}
		if i.Network != "" && s.Network(i.Network) == nil {
			r.add(Error, "iface/unknown-network", i.Name, "mapped to unknown network %q", i.Network)
		}
		if i.PayloadBytes <= 0 {
			r.add(Error, "iface/zero-payload", i.Name, "payload must be positive")
		}
	}
	for _, b := range s.Bindings {
		if s.App(b.Client) == nil {
			r.add(Error, "bind/unknown-client", b.Client, "binding from unknown app")
		}
		ifc := s.Interface(b.Interface)
		if ifc == nil {
			r.add(Error, "bind/unknown-iface", b.Interface, "binding to unknown interface")
			continue
		}
		if ifc.Owner == b.Client {
			r.add(Warning, "bind/self", b.Client, "app binds its own interface %q", b.Interface)
		}
	}
	for app := range s.Placement {
		if s.App(app) == nil {
			r.add(Error, "placement/unknown-app", app, "placement for unknown app")
		}
	}
}

func validatePlacement(s *System, r *Report) {
	for _, a := range s.Apps {
		ecuName, placed := s.Placement[a.Name]
		if !placed {
			continue
		}
		ecu := s.ECU(ecuName)
		if ecu == nil {
			r.add(Error, "placement/unknown-ecu", a.Name, "placed on unknown ECU %q", ecuName)
			continue
		}
		if len(a.Candidates) > 0 {
			ok := false
			for _, c := range a.Candidates {
				if c == ecuName {
					ok = true
					break
				}
			}
			if !ok {
				r.add(Error, "placement/outside-candidates", a.Name,
					"placed on %s, outside candidate set %v", ecuName, a.Candidates)
			}
		}
		if a.Kind == Deterministic && ecu.OS != OSRTOS {
			r.add(Error, "placement/da-needs-rtos", a.Name,
				"deterministic app on non-RTOS ECU %s (Section 3.1)", ecuName)
		}
		if a.NeedsGPU && !ecu.HasGPU {
			r.add(Error, "placement/needs-gpu", a.Name, "requires GPU absent on %s", ecuName)
		}
		if a.NeedsCrypto && !ecu.HasCryptoHW {
			r.add(Error, "placement/needs-crypto", a.Name, "requires crypto HW absent on %s", ecuName)
		}
	}
	// Mixed-criticality co-location demands an MMU for process separation.
	for _, e := range s.ECUs {
		apps := s.AppsOn(e.Name)
		if len(apps) < 2 || e.HasMMU {
			continue
		}
		minA, maxA := apps[0].ASIL, apps[0].ASIL
		for _, a := range apps[1:] {
			if a.ASIL < minA {
				minA = a.ASIL
			}
			if a.ASIL > maxA {
				maxA = a.ASIL
			}
		}
		if minA != maxA {
			r.add(Error, "placement/mixed-needs-mmu", e.Name,
				"hosts ASIL %v..%v apps without an MMU (Section 3.1 Memory)", minA, maxA)
		}
	}
	// Redundancy requires enough distinct candidate ECUs.
	for _, a := range s.Apps {
		if a.Replicas <= 1 {
			continue
		}
		candidates := a.Candidates
		if len(candidates) == 0 {
			for _, e := range s.ECUs {
				candidates = append(candidates, e.Name)
			}
		}
		if len(candidates) < a.Replicas {
			r.add(Error, "redundancy/too-few-ecus", a.Name,
				"needs %d replicas but only %d candidate ECUs (Section 3.3)",
				a.Replicas, len(candidates))
		}
	}
}

func validateResources(s *System, r *Report) {
	for _, e := range s.ECUs {
		if mem := s.ECUMemoryUse(e); mem > e.MemoryKB {
			r.add(Error, "resources/memory", e.Name,
				"memory over-committed: %dKB of %dKB", mem, e.MemoryKB)
		}
		if u := s.ECUUtilization(e); u > 1.0 {
			r.add(Error, "resources/cpu", e.Name,
				"deterministic utilization %.2f exceeds 1.0", u)
		} else if u > 0.8 {
			r.add(Warning, "resources/cpu-high", e.Name,
				"deterministic utilization %.2f leaves little headroom for NDAs", u)
		}
	}
}

func validateTiming(s *System, r *Report) {
	for _, a := range s.Apps {
		if a.Kind != Deterministic {
			continue
		}
		if a.Period <= 0 {
			r.add(Error, "timing/no-period", a.Name, "deterministic app needs a period")
			continue
		}
		if a.WCET <= 0 {
			r.add(Error, "timing/no-wcet", a.Name, "deterministic app needs a WCET")
			continue
		}
		if a.Deadline > a.Period {
			r.add(Warning, "timing/deadline-gt-period", a.Name,
				"deadline %v exceeds period %v", a.Deadline, a.Period)
		}
		if a.WCET > a.Deadline && a.Deadline > 0 {
			r.add(Error, "timing/wcet-gt-deadline", a.Name,
				"WCET %v exceeds deadline %v at reference clock", a.WCET, a.Deadline)
		}
		if ecuName, ok := s.Placement[a.Name]; ok {
			if ecu := s.ECU(ecuName); ecu != nil && a.Deadline > 0 {
				if w := ecu.ScaledWCET(a.WCET); w > a.Deadline {
					r.add(Error, "timing/wcet-on-ecu", a.Name,
						"scaled WCET %v on %s exceeds deadline %v", w, ecuName, a.Deadline)
				}
			}
		}
	}
}

func validateSafety(s *System, r *Report) {
	// ASIL dependency rule (Section 3): a module is only safe if all of its
	// dependencies carry at least its own rating.
	for _, b := range s.Bindings {
		client := s.App(b.Client)
		ifc := s.Interface(b.Interface)
		if client == nil || ifc == nil {
			continue
		}
		owner := s.App(ifc.Owner)
		if owner == nil {
			continue
		}
		if owner.ASIL < client.ASIL {
			r.add(Error, "safety/asil-dependency", b.Client,
				"ASIL %v app depends on interface %q provided by ASIL %v app %q",
				client.ASIL, ifc.Name, owner.ASIL, owner.Name)
		}
	}
}

func validateComms(s *System, r *Report) {
	// Reachability: every binding whose endpoints are placed on different
	// ECUs needs a shared network, and the interface must be mapped to one.
	for _, b := range s.Bindings {
		ifc := s.Interface(b.Interface)
		if ifc == nil || s.App(b.Client) == nil || s.App(ifc.Owner) == nil {
			continue
		}
		cEcu, cOK := s.Placement[b.Client]
		oEcu, oOK := s.Placement[ifc.Owner]
		if !cOK || !oOK || cEcu == oEcu {
			continue
		}
		if ifc.Network == "" {
			r.add(Error, "comms/needs-network", ifc.Name,
				"crosses ECUs %s→%s but is not mapped to a network", oEcu, cEcu)
			continue
		}
		n := s.Network(ifc.Network)
		if n == nil {
			continue // reported by refs check
		}
		if !n.Attaches(cEcu) || !n.Attaches(oEcu) {
			r.add(Error, "comms/unreachable", ifc.Name,
				"network %s does not attach both %s and %s", n.Name, oEcu, cEcu)
		}
	}
	// Bandwidth: summed nominal load per network must fit the line rate.
	load := map[string]float64{}
	for _, i := range s.Interfaces {
		if i.Network == "" {
			continue
		}
		load[i.Network] += i.NominalBitsPerSecond()
	}
	names := make([]string, 0, len(load))
	for n := range load {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		n := s.Network(name)
		if n == nil || n.BitsPerSecond <= 0 {
			continue
		}
		frac := load[name] / float64(n.BitsPerSecond)
		switch {
		case frac > 1.0:
			r.add(Error, "comms/bandwidth", name,
				"offered load %.0f bps exceeds capacity %d bps", load[name], n.BitsPerSecond)
		case frac > 0.7:
			r.add(Warning, "comms/bandwidth-high", name,
				"offered load is %.0f%% of capacity", frac*100)
		}
	}
	// Latency plausibility: the pure transmission time of one payload must
	// not already exceed the latency bound.
	for _, i := range s.Interfaces {
		if i.Network == "" || i.LatencyBound <= 0 {
			continue
		}
		n := s.Network(i.Network)
		if n == nil || n.BitsPerSecond <= 0 {
			continue
		}
		txNs := float64(i.PayloadBytes*8) / float64(n.BitsPerSecond) * 1e9
		if txNs > float64(i.LatencyBound) {
			r.add(Error, "comms/latency-infeasible", i.Name,
				"transmitting %dB on %s takes %.0fns, above latency bound %v",
				i.PayloadBytes, n.Name, txNs, i.LatencyBound)
		}
	}
}

// NominalBitsPerSecond returns the steady-state offered load of the
// interface: explicit rate for streams, payload/period otherwise.
func (i *Interface) NominalBitsPerSecond() float64 {
	if i.BitsPerSecond > 0 {
		return float64(i.BitsPerSecond)
	}
	if i.Period <= 0 {
		return 0
	}
	perSec := 1e9 / float64(i.Period)
	bits := float64(i.PayloadBytes * 8)
	if i.Paradigm == Message {
		bits *= 2 // request and response
	}
	return bits * perSec
}
