package model

import (
	"fmt"

	"dynaplat/internal/sim"
)

// This file generates heterogeneous vehicle variants for fleet-scale
// simulation (ROADMAP item 1): a real fleet is not N copies of one
// E/E architecture but a population of build variants — different ECU
// counts and speeds, different bus technologies, different application
// mixes — that one OTA campaign must nevertheless cover. GenerateVariant
// draws one such variant deterministically from a sim.RNG stream, so a
// fleet of N vehicles is a pure function of N seeds.

// VariantConfig bounds the generated heterogeneity. The zero value
// selects the defaults documented per field.
type VariantConfig struct {
	// MinECUs/MaxECUs bound the compute-ECU count (defaults 2 and 5).
	MinECUs, MaxECUs int
	// MaxExtraDAs bounds the deterministic applications generated beside
	// the always-present OTA target app (default 3).
	MaxExtraDAs int
	// MaxNDAs bounds the best-effort applications (default 3).
	MaxNDAs int
}

func (c VariantConfig) withDefaults() VariantConfig {
	if c.MinECUs <= 0 {
		c.MinECUs = 2
	}
	if c.MaxECUs < c.MinECUs {
		c.MaxECUs = c.MinECUs + 3
	}
	if c.MaxExtraDAs <= 0 {
		c.MaxExtraDAs = 3
	}
	if c.MaxNDAs <= 0 {
		c.MaxNDAs = 3
	}
	return c
}

// OTATargetApp is the application every generated variant carries: the
// logical app a fleet-wide OTA campaign updates. Its parameters
// (period, WCET, memory) still vary per variant.
const OTATargetApp = "otatgt"

// BackboneName is the generated variants' single vehicle network.
const BackboneName = "backbone"

// SinkApp is the cockpit consumer every variant carries; it subscribes
// to every DA state interface and is where availability is measured.
const SinkApp = "dash"

// GenerateVariant draws one heterogeneous vehicle architecture from rng.
// The result is schedulable and updatable by construction:
//
//   - every ECU runs an RTOS with an MMU, so deterministic apps may be
//     placed anywhere;
//   - per-ECU utilization of the generated DAs stays well under 1 even
//     at the slowest clock;
//   - the OTA target's host ECU keeps at least the target's own memory
//     budget free, so a staged update (which doubles the app's
//     footprint, DESIGN.md §3.2) always has install headroom.
//
// The variant is a pure function of the rng stream: two calls with
// identically seeded generators yield identical systems.
func GenerateVariant(rng *sim.RNG, name string, cfg VariantConfig) *System {
	cfg = cfg.withDefaults()
	sys := NewSystem(name)

	// Hardware: 2–5 compute ECUs with heterogeneous clocks and memory.
	nECU := rng.Range(cfg.MinECUs, cfg.MaxECUs)
	clocks := []int{100, 200, 400}
	mems := []int{384, 512, 768}
	for i := 0; i < nECU; i++ {
		sys.ECUs = append(sys.ECUs, &ECU{
			Name:     fmt.Sprintf("cpm%d", i),
			CPUMHz:   clocks[rng.Intn(len(clocks))],
			MemoryKB: mems[rng.Intn(len(mems))],
			HasMMU:   true,
			OS:       OSRTOS,
		})
	}

	// Bus topology: one backbone, either switched Ethernet (newer
	// variants) or a classic CAN bus (legacy builds). The OTA campaign
	// must behave across both.
	net := &Network{Name: BackboneName}
	if rng.Bool(0.6) {
		net.Kind = NetEthernet
		net.BitsPerSecond = []int64{100_000_000, 1_000_000_000}[rng.Intn(2)]
	} else {
		net.Kind = NetCAN
		net.BitsPerSecond = []int64{500_000, 1_000_000}[rng.Intn(2)]
	}
	for _, e := range sys.ECUs {
		net.Attached = append(net.Attached, e.Name)
	}
	sys.Networks = append(sys.Networks, net)

	periods := []sim.Duration{5 * sim.Millisecond, 10 * sim.Millisecond, 20 * sim.Millisecond}
	addDA := func(appName string, ecu int, asil ASIL) *App {
		period := periods[rng.Intn(len(periods))]
		app := &App{
			Name:     appName,
			Kind:     Deterministic,
			ASIL:     asil,
			Period:   period,
			WCET:     sim.Duration(rng.Range(200, 600)) * sim.Microsecond,
			Deadline: period,
			MemoryKB: []int{64, 96, 128}[rng.Intn(3)],
			Version:  1,
		}
		sys.Apps = append(sys.Apps, app)
		sys.Placement[appName] = sys.ECUs[ecu].Name
		iface := &Interface{
			Name:         appName + ".state",
			Owner:        appName,
			Paradigm:     Event,
			PayloadBytes: rng.Range(8, 16),
			Period:       period,
			Network:      BackboneName,
			Version:      1,
		}
		sys.Interfaces = append(sys.Interfaces, iface)
		sys.Bindings = append(sys.Bindings, Binding{Client: "dash", Interface: iface.Name})
		return app
	}

	// Every variant carries the cockpit sink consuming all DA state
	// interfaces — the measurement point for fleet availability. It
	// lives on the last (usually fastest-booting head-unit style) ECU.
	sys.Apps = append(sys.Apps, &App{
		Name: SinkApp, Kind: NonDeterministic, ASIL: QM, MemoryKB: 64, Version: 1,
	})
	sys.Placement[SinkApp] = sys.ECUs[nECU-1].Name

	// The OTA target always lives on cpm0; the extra DAs round-robin
	// over the remaining ECUs so no single node concentrates load.
	target := addDA(OTATargetApp, 0, ASILD)
	nDA := rng.Range(1, cfg.MaxExtraDAs)
	for i := 0; i < nDA; i++ {
		addDA(fmt.Sprintf("da%d", i), (i+1)%nECU, []ASIL{ASILC, ASILD}[rng.Intn(2)])
	}

	// Best-effort apps fill out the mix (infotainment-style load).
	nNDA := rng.Intn(cfg.MaxNDAs + 1)
	for i := 0; i < nNDA; i++ {
		app := &App{
			Name:     fmt.Sprintf("nda%d", i),
			Kind:     NonDeterministic,
			ASIL:     []ASIL{QM, ASILB}[rng.Intn(2)],
			MemoryKB: []int{64, 128}[rng.Intn(2)],
			Version:  1,
		}
		sys.Apps = append(sys.Apps, app)
		sys.Placement[app.Name] = sys.ECUs[rng.Intn(nECU)].Name
	}

	// Memory feasibility: every ECU must fit its placed apps, and the
	// OTA target's host must additionally hold the target's budget twice
	// — the staged update runs old and new instances in parallel
	// (DESIGN.md §3.2). Grow a tight ECU rather than rejecting the
	// variant (rejection sampling would make the draw count
	// data-dependent and couple vehicles' RNG streams to placement luck).
	for _, e := range sys.ECUs {
		need := sys.ECUMemoryUse(e)
		if e == sys.ECUs[0] {
			need += target.MemoryKB
		}
		if e.MemoryKB < need {
			e.MemoryKB = need
		}
	}
	return sys
}
