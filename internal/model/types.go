// Package model defines the dynaplat system model: hardware architecture,
// applications, service interfaces, and deployments, together with a text
// DSL, a verification engine, and access-control extraction.
//
// The model is the single source of truth the paper's Section 2.2 calls
// for: schedules, communication configurations, access-control matrices and
// simulation inputs are all derived from it.
package model

import (
	"fmt"

	"dynaplat/internal/sim"
)

// ASIL is an ISO 26262 Automotive Safety Integrity Level.
// QM (quality managed) is the lowest; D is the highest.
type ASIL int

// ASIL levels in increasing criticality.
const (
	QM ASIL = iota
	ASILA
	ASILB
	ASILC
	ASILD
)

var asilNames = map[ASIL]string{QM: "QM", ASILA: "A", ASILB: "B", ASILC: "C", ASILD: "D"}

func (a ASIL) String() string {
	if s, ok := asilNames[a]; ok {
		return s
	}
	return fmt.Sprintf("ASIL(%d)", int(a))
}

// ParseASIL parses "QM", "A".."D" (case-insensitive).
func ParseASIL(s string) (ASIL, error) {
	switch normalize(s) {
	case "qm":
		return QM, nil
	case "a":
		return ASILA, nil
	case "b":
		return ASILB, nil
	case "c":
		return ASILC, nil
	case "d":
		return ASILD, nil
	}
	return QM, fmt.Errorf("unknown ASIL %q", s)
}

// OSKind categorizes the operating system of an ECU (Section 1.1: an RTOS
// is required wherever deterministic applications run).
type OSKind int

const (
	// OSRTOS is a real-time OS with time- and priority-based scheduling.
	OSRTOS OSKind = iota
	// OSPOSIX is a general-purpose POSIX OS without real-time guarantees.
	OSPOSIX
)

func (o OSKind) String() string {
	if o == OSRTOS {
		return "rtos"
	}
	return "posix"
}

// ECU describes one electronic control unit (or consolidated computing
// platform) in the hardware architecture.
type ECU struct {
	Name string
	// CPUMHz is the clock rate; WCETs in the model are stated at the
	// 100 MHz reference and scale linearly (WCET·100/CPUMHz).
	CPUMHz int
	// MemoryKB is usable application RAM.
	MemoryKB int
	// HasMMU reports hardware memory protection (needed for process
	// separation, Section 3.1 "Memory").
	HasMMU bool
	// HasCryptoHW reports a hardware crypto module; ECUs without one are
	// "weak" and delegate package verification to an update master
	// (Section 4.1).
	HasCryptoHW bool
	// HasGPU reports an accelerator for neural-network workloads.
	HasGPU bool
	// OS is the operating-system class running on the ECU.
	OS OSKind
	// Cost is an abstract unit cost used by design-space exploration.
	Cost int
}

// ReferenceMHz is the CPU speed at which App.WCET is stated.
const ReferenceMHz = 100

// ScaledWCET returns the execution time of work (stated at ReferenceMHz)
// on this ECU.
func (e *ECU) ScaledWCET(wcet sim.Duration) sim.Duration {
	if e.CPUMHz <= 0 {
		return wcet
	}
	return sim.Duration(int64(wcet) * ReferenceMHz / int64(e.CPUMHz))
}

// NetworkKind identifies a communication-system technology.
type NetworkKind int

const (
	// NetCAN is a Controller Area Network bus (priority arbitration).
	NetCAN NetworkKind = iota
	// NetFlexRay is a FlexRay bus (static TDMA + dynamic minislots).
	NetFlexRay
	// NetEthernet is switched Ethernet with TSN time-aware shaping.
	NetEthernet
)

func (n NetworkKind) String() string {
	switch n {
	case NetCAN:
		return "can"
	case NetFlexRay:
		return "flexray"
	case NetEthernet:
		return "ethernet"
	}
	return fmt.Sprintf("NetworkKind(%d)", int(n))
}

// Network describes one communication system connecting a set of ECUs.
type Network struct {
	Name string
	Kind NetworkKind
	// BitsPerSecond is the raw line rate.
	BitsPerSecond int64
	// Attached lists the names of connected ECUs.
	Attached []string
}

// Attaches reports whether the network connects the named ECU.
func (n *Network) Attaches(ecu string) bool {
	for _, a := range n.Attached {
		if a == ecu {
			return true
		}
	}
	return false
}

// AppKind divides applications per the paper's Section 3.1 application
// model.
type AppKind int

const (
	// Deterministic applications have fixed periods, WCETs, deadlines and
	// jitter bounds (control loops, ADAS functions).
	Deterministic AppKind = iota
	// NonDeterministic applications have relaxed scheduling requirements
	// and bursty behaviour (infotainment).
	NonDeterministic
)

func (k AppKind) String() string {
	if k == Deterministic {
		return "da"
	}
	return "nda"
}

// App describes one application, the smallest unit of addition and update
// on the dynamic platform (Section 1.1).
type App struct {
	Name string
	Kind AppKind
	ASIL ASIL

	// Timing parameters (deterministic apps; WCET at ReferenceMHz).
	Period   sim.Duration
	WCET     sim.Duration
	Deadline sim.Duration
	// Jitter is the allowed activation-to-activation jitter bound.
	Jitter sim.Duration

	// MemoryKB is the application's memory budget.
	MemoryKB int

	// NeedsGPU / NeedsCrypto constrain placement.
	NeedsGPU    bool
	NeedsCrypto bool

	// Replicas requests fail-operational redundancy: the platform keeps
	// this many synchronized instances on distinct ECUs (Section 3.3).
	Replicas int

	// Version is the installed software version (bumped by updates).
	Version int

	// Candidates optionally restricts the ECUs this app may be mapped to
	// (design-space variants, Section 2.3). Empty means unconstrained.
	Candidates []string
}

// Utilization returns the CPU utilization of the app at the reference
// clock rate (WCET/Period), or 0 for aperiodic apps.
func (a *App) Utilization() float64 {
	if a.Period <= 0 {
		return 0
	}
	return float64(a.WCET) / float64(a.Period)
}

// Paradigm is one of the paper's Figure 3 communication paradigms.
type Paradigm int

const (
	// Event is one-way publish/subscribe notification; the producer owns
	// the interface.
	Event Paradigm = iota
	// Message is two-way request/response (RPC); the service provider
	// (consumer of requests) owns the interface.
	Message
	// Stream is one-way continuous data with inter-frame dependencies
	// (audio/video); the producer owns the interface.
	Stream
)

func (p Paradigm) String() string {
	switch p {
	case Event:
		return "event"
	case Message:
		return "message"
	case Stream:
		return "stream"
	}
	return fmt.Sprintf("Paradigm(%d)", int(p))
}

// ParseParadigm parses "event", "message" or "stream".
func ParseParadigm(s string) (Paradigm, error) {
	switch normalize(s) {
	case "event":
		return Event, nil
	case "message", "rpc":
		return Message, nil
	case "stream":
		return Stream, nil
	}
	return Event, fmt.Errorf("unknown paradigm %q", s)
}

// Interface describes one service interface between applications
// (Section 2.1): complex typed objects rather than bit-offset signals.
// Every interface has exactly one owner who controls its description and
// version.
type Interface struct {
	Name string
	// Owner is the name of the owning application (producer for Event and
	// Stream, service provider for Message).
	Owner    string
	Paradigm Paradigm

	// PayloadBytes is the (maximum) payload per transfer.
	PayloadBytes int
	// Period is the nominal publication period (Event) or request period
	// (Message) or frame interval (Stream).
	Period sim.Duration

	// Requirements (Section 2.2): latency and jitter bounds for real-time
	// interfaces, bandwidth for streaming ones.
	LatencyBound  sim.Duration
	JitterBound   sim.Duration
	BitsPerSecond int64

	// Network names the communication system carrying the interface in
	// the current deployment. Empty means ECU-local only.
	Network string

	// Version is the interface contract version.
	Version int
}

// Binding records that a client application consumes an interface.
// The set of bindings is the input to access-control extraction
// (Section 4.2).
type Binding struct {
	Client    string
	Interface string
}

// System is the complete model: hardware, software, interfaces and the
// current deployment.
type System struct {
	Name       string
	ECUs       []*ECU
	Networks   []*Network
	Apps       []*App
	Interfaces []*Interface
	Bindings   []Binding
	// Placement maps app name → ECU name. Apps absent from the map are
	// not yet deployed (their mapping is open for DSE, Section 2.3).
	Placement map[string]string
}

// NewSystem returns an empty named system.
func NewSystem(name string) *System {
	return &System{Name: name, Placement: map[string]string{}}
}

// ECU returns the named ECU, or nil.
func (s *System) ECU(name string) *ECU {
	for _, e := range s.ECUs {
		if e.Name == name {
			return e
		}
	}
	return nil
}

// Network returns the named network, or nil.
func (s *System) Network(name string) *Network {
	for _, n := range s.Networks {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// App returns the named application, or nil.
func (s *System) App(name string) *App {
	for _, a := range s.Apps {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Interface returns the named interface, or nil.
func (s *System) Interface(name string) *Interface {
	for _, i := range s.Interfaces {
		if i.Name == name {
			return i
		}
	}
	return nil
}

// AppsOn returns the applications placed on the named ECU.
func (s *System) AppsOn(ecu string) []*App {
	// Single exact-size allocation: this runs per ECU in validation,
	// DSE inner loops and platform construction.
	out := make([]*App, 0, len(s.Apps))
	for _, a := range s.Apps {
		if s.Placement[a.Name] == ecu {
			out = append(out, a)
		}
	}
	return out
}

// InterfacesOf returns the interfaces owned by the named app.
func (s *System) InterfacesOf(app string) []*Interface {
	var out []*Interface
	for _, i := range s.Interfaces {
		if i.Owner == app {
			out = append(out, i)
		}
	}
	return out
}

// ConsumersOf returns the client app names bound to the named interface.
func (s *System) ConsumersOf(iface string) []string {
	var out []string
	for _, b := range s.Bindings {
		if b.Interface == iface {
			out = append(out, b.Client)
		}
	}
	return out
}

// Clone returns a deep copy of the system. DSE mutates clones freely.
func (s *System) Clone() *System {
	c := NewSystem(s.Name)
	for _, e := range s.ECUs {
		e2 := *e
		c.ECUs = append(c.ECUs, &e2)
	}
	for _, n := range s.Networks {
		n2 := *n
		n2.Attached = append([]string(nil), n.Attached...)
		c.Networks = append(c.Networks, &n2)
	}
	for _, a := range s.Apps {
		a2 := *a
		a2.Candidates = append([]string(nil), a.Candidates...)
		c.Apps = append(c.Apps, &a2)
	}
	for _, i := range s.Interfaces {
		i2 := *i
		c.Interfaces = append(c.Interfaces, &i2)
	}
	c.Bindings = append([]Binding(nil), s.Bindings...)
	for k, v := range s.Placement {
		c.Placement[k] = v
	}
	return c
}

// ECUUtilization returns the summed CPU utilization of deterministic apps
// placed on the ECU, scaled to the ECU's clock.
func (s *System) ECUUtilization(ecu *ECU) float64 {
	u := 0.0
	for _, a := range s.AppsOn(ecu.Name) {
		if a.Kind != Deterministic || a.Period <= 0 {
			continue
		}
		u += float64(ecu.ScaledWCET(a.WCET)) / float64(a.Period)
	}
	return u
}

// ECUMemoryUse returns the summed memory budget of apps on the ECU in KB.
func (s *System) ECUMemoryUse(ecu *ECU) int {
	m := 0
	for _, a := range s.AppsOn(ecu.Name) {
		m += a.MemoryKB
	}
	return m
}

// SameNetwork returns the name of a network attaching both ECUs, or "".
func (s *System) SameNetwork(ecuA, ecuB string) string {
	for _, n := range s.Networks {
		if n.Attaches(ecuA) && n.Attaches(ecuB) {
			return n.Name
		}
	}
	return ""
}
