package dynaplat

// One benchmark per experiment in EXPERIMENTS.md (E1–E24). Each
// iteration regenerates the experiment's full result table on the
// simulated substrate; the custom "holds" metric reports whether the
// paper-derived expectation held (1) or not (0), so a bench run doubles
// as a reproduction check:
//
//	go test -bench=. -benchmem
//
// Use cmd/exprun to print the tables themselves.

import (
	"sync/atomic"
	"testing"

	"dynaplat/internal/experiments"
	"dynaplat/internal/fleet"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	holds := 1.0
	for i := 0; i < b.N; i++ {
		t, err := experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if !t.Holds {
			holds = 0
		}
	}
	b.ReportMetric(holds, "holds")
}

func BenchmarkE1MixedCriticality(b *testing.B)  { benchExperiment(b, "E1") }
func BenchmarkE2Paradigms(b *testing.B)         { benchExperiment(b, "E2") }
func BenchmarkE3ScheduleSynthesis(b *testing.B) { benchExperiment(b, "E3") }
func BenchmarkE4CommInterference(b *testing.B)  { benchExperiment(b, "E4") }
func BenchmarkE5StagedUpdate(b *testing.B)      { benchExperiment(b, "E5") }
func BenchmarkE6DistributedUpdate(b *testing.B) { benchExperiment(b, "E6") }
func BenchmarkE7Failover(b *testing.B)          { benchExperiment(b, "E7") }
func BenchmarkE8Monitoring(b *testing.B)        { benchExperiment(b, "E8") }
func BenchmarkE9PackageSecurity(b *testing.B)   { benchExperiment(b, "E9") }
func BenchmarkE10AuthBinding(b *testing.B)      { benchExperiment(b, "E10") }
func BenchmarkE11DSE(b *testing.B)              { benchExperiment(b, "E11") }
func BenchmarkE12SecurityAnalysis(b *testing.B) { benchExperiment(b, "E12") }
func BenchmarkE13XiL(b *testing.B)              { benchExperiment(b, "E13") }
func BenchmarkE14MemorySeparation(b *testing.B) { benchExperiment(b, "E14") }
func BenchmarkE15Consolidation(b *testing.B)    { benchExperiment(b, "E15") }
func BenchmarkE16ClockSync(b *testing.B)        { benchExperiment(b, "E16") }
func BenchmarkE17E2EProtection(b *testing.B)    { benchExperiment(b, "E17") }
func BenchmarkE18GatewayBridge(b *testing.B)    { benchExperiment(b, "E18") }
func BenchmarkE19ServiceDiscovery(b *testing.B) { benchExperiment(b, "E19") }
func BenchmarkE20ParetoFront(b *testing.B)      { benchExperiment(b, "E20") }
func BenchmarkE21FaultCampaign(b *testing.B)    { benchExperiment(b, "E21") }
func BenchmarkE22Reconfig(b *testing.B)         { benchExperiment(b, "E22") }
func BenchmarkE23FleetRollout(b *testing.B)     { benchExperiment(b, "E23") }
func BenchmarkE24MeshOverload(b *testing.B)     { benchExperiment(b, "E24") }

// BenchmarkFleetRollout measures raw fleet-simulation throughput: one
// 500-vehicle sharded campaign (heterogeneous variants, verified staged
// updates, 10% seeded bad images) per iteration, reported as
// vehicles/min. The fleet layer's sizing target is ≥10k vehicles/minute.
func BenchmarkFleetRollout(b *testing.B) {
	vehicles := 0
	for i := 0; i < b.N; i++ {
		rep, err := fleet.RunCampaign(fleet.CampaignConfig{
			FleetSeed: 0xBE7C4, Vehicles: 500,
			Update: fleet.UpdateSpec{Verify: true, FaultProb: 0.1},
		})
		if err != nil {
			b.Fatal(err)
		}
		vehicles += len(rep.Vehicles)
	}
	b.ReportMetric(float64(vehicles)/b.Elapsed().Minutes(), "vehicles/min")
}

// BenchmarkEndToEndSimulation measures the facade's full-vehicle
// simulation throughput (virtual seconds simulated per wall run).
func BenchmarkEndToEndSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := FromDSL(demoDSL, Options{Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.StartAll(); err != nil {
			b.Fatal(err)
		}
		s.Run(1 * Second)
	}
}

// BenchmarkEndToEndSimulationParallel is the RunParallel variant: one
// independent simulation (own kernel, own seed) per goroutine iteration.
// On multicore hardware aggregate throughput scales with GOMAXPROCS;
// each individual simulation remains bit-deterministic for its seed.
func BenchmarkEndToEndSimulationParallel(b *testing.B) {
	var seed atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s, err := FromDSL(demoDSL, Options{Seed: seed.Add(1)})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.StartAll(); err != nil {
				b.Fatal(err)
			}
			s.Run(1 * Second)
		}
	})
}
