module dynaplat

go 1.22
