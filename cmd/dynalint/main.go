// Command dynalint is the driver for the determinism & lifecycle
// static-analysis suite (internal/lint, DESIGN.md §8). It walks the
// requested packages and enforces the platform's five contracts —
// walltime, seededrand, maporder, nogoroutine, droppedref — with
// vet-style file:line:col diagnostics and a non-zero exit on findings.
//
// Usage:
//
//	dynalint [flags] [packages]
//
//	dynalint ./...                      lint the whole module
//	dynalint -checks walltime ./...     run a subset of checks
//	dynalint -json ./internal/soa       machine-readable findings
//	dynalint -list                      describe the analyzers
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"dynaplat/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dynalint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list the analyzers and their allowlist policy, then exit")
	root := fs.String("root", ".", "module root (directory containing go.mod)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: dynalint [flags] [packages]\n")
		fmt.Fprintf(stderr, "enforces the platform's determinism & lifecycle contracts (DESIGN.md §8)\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
			if len(a.Exempt) > 0 {
				fmt.Fprintf(stdout, "%-12s   exempt: %v\n", "", a.Exempt)
			}
		}
		return 0
	}
	analyzers, err := lint.ByName(*checks)
	if err != nil {
		fmt.Fprintln(stderr, "dynalint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(*root)
	if err != nil {
		fmt.Fprintln(stderr, "dynalint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "dynalint:", err)
		return 2
	}
	diags := lint.RunSuite(analyzers, pkgs)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "dynalint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stdout, "dynalint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
