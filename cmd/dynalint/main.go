// Command dynalint is the driver for the determinism & lifecycle
// static-analysis suite (internal/lint, DESIGN.md §8). It walks the
// requested packages and enforces the platform's seven contracts —
// walltime, seededrand, maporder, nogoroutine, droppedref, sharedrng,
// parshared — interprocedurally over a whole-program call graph, with
// vet-style file:line:col diagnostics (indirect findings carry the full
// witness path, e.g. "a → b → time.Now") and a non-zero exit on
// findings.
//
// Usage:
//
//	dynalint [flags] [packages]
//
//	dynalint ./...                      lint the whole module
//	dynalint -checks walltime ./...     run a subset of checks
//	dynalint -json ./internal/soa       machine-readable findings
//	dynalint -list                      describe the analyzers
//	dynalint -allows ./...              inventory every //dynalint:allow
//	dynalint -graph ./internal/soa      dump the call graph (debug)
//
// Exit status: 0 clean, 1 findings (or malformed allows under
// -allows), 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"dynaplat/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dynalint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list the analyzers and their allowlist policy, then exit")
	allows := fs.Bool("allows", false, "inventory every //dynalint:allow directive (file:line, check, reason) instead of linting")
	graph := fs.Bool("graph", false, "dump the whole-program call graph (caller -> callee [kind] @pos) instead of linting")
	root := fs.String("root", ".", "module root (directory containing go.mod)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: dynalint [flags] [packages]\n")
		fmt.Fprintf(stderr, "enforces the platform's determinism & lifecycle contracts (DESIGN.md §8)\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
			if len(a.Exempt) > 0 {
				fmt.Fprintf(stdout, "%-12s   exempt: %v\n", "", a.Exempt)
			}
		}
		return 0
	}
	analyzers, err := lint.ByName(*checks)
	if err != nil {
		fmt.Fprintln(stderr, "dynalint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(*root)
	if err != nil {
		fmt.Fprintln(stderr, "dynalint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "dynalint:", err)
		return 2
	}
	if *allows {
		return runAllows(pkgs, *jsonOut, stdout, stderr)
	}
	if *graph {
		for _, line := range lint.NewProgram(pkgs).Graph().DumpGraph() {
			fmt.Fprintln(stdout, line)
		}
		return 0
	}
	diags := lint.RunSuite(analyzers, pkgs)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "dynalint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stdout, "dynalint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// runAllows prints the //dynalint:allow inventory: every audited
// exception with its position, check, and mandatory reason. Exit 1
// when any directive is malformed (it would not suppress), 0 otherwise
// — the inventory itself is not a failure.
func runAllows(pkgs []*lint.Package, jsonOut bool, stdout, stderr io.Writer) int {
	inv := lint.AllowInventory(pkgs)
	malformed := 0
	for _, e := range inv {
		if e.Malformed {
			malformed++
		}
	}
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if inv == nil {
			inv = []lint.AllowEntry{}
		}
		if err := enc.Encode(inv); err != nil {
			fmt.Fprintln(stderr, "dynalint:", err)
			return 2
		}
	} else {
		for _, e := range inv {
			status := ""
			if e.Malformed {
				status = " [MALFORMED]"
			}
			fmt.Fprintf(stdout, "%s:%d: %s: %s%s\n", e.File, e.Line, e.Check, e.Reason, status)
		}
		fmt.Fprintf(stdout, "dynalint: %d allow directive(s), %d malformed\n", len(inv), malformed)
	}
	if malformed > 0 {
		return 1
	}
	return 0
}
