package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// chdirRepoRoot pins the working directory to the module root so
// diagnostic paths in the golden file are stable.
func chdirRepoRoot(t *testing.T) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Join(wd, "..", "..")
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = os.Chdir(wd) })
}

// TestEndToEndGolden runs the full driver over the analyzer fixtures
// and diffs the diagnostics against a golden transcript: message
// wording, positions, ordering, and the summary line are all pinned.
func TestEndToEndGolden(t *testing.T) {
	chdirRepoRoot(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"internal/lint/testdata/..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (fixtures contain findings); stderr: %s", code, stderr.String())
	}
	golden, err := os.ReadFile(filepath.Join("cmd", "dynalint", "testdata", "golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stdout.String(), string(golden); got != want {
		t.Errorf("output differs from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestJSONOutput checks -json emits a machine-readable array that
// agrees with the text run.
func TestJSONOutput(t *testing.T) {
	chdirRepoRoot(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "internal/lint/testdata/walltime"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	var diags []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("no findings decoded")
	}
	for _, d := range diags {
		if d.Check != "walltime" && d.Check != "allow" {
			t.Errorf("unexpected check %q in walltime fixture", d.Check)
		}
		if d.File == "" || d.Line == 0 {
			t.Errorf("missing position in %+v", d)
		}
	}
}

// TestChecksSubset: -checks restricts the suite; the seededrand fixture
// is clean under walltime alone.
func TestChecksSubset(t *testing.T) {
	chdirRepoRoot(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-checks", "walltime", "internal/lint/testdata/seededrand"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; out: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("expected no output, got %s", stdout.String())
	}
}

// TestListAndUsage covers -list and the usage-error exit code.
func TestListAndUsage(t *testing.T) {
	chdirRepoRoot(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, name := range []string{"walltime", "seededrand", "maporder", "nogoroutine", "droppedref"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s", name)
		}
	}
	stdout.Reset()
	if code := run([]string{"-checks", "bogus", "./internal/sim"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown check exit = %d, want 2", code)
	}
	if code := run([]string{"./no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad pattern exit = %d, want 2", code)
	}
}

// TestAllowsInventory: -allows lists every //dynalint:allow with its
// position, check, and reason, flags malformed directives, and exits 1
// when any directive would not suppress.
func TestAllowsInventory(t *testing.T) {
	chdirRepoRoot(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-allows", "internal/lint/testdata/walltime"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (fixture has a reason-less allow); stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[MALFORMED]") {
		t.Error("reason-less allow not marked MALFORMED")
	}
	if !strings.Contains(out, "harness timing measured around the run") {
		t.Error("well-formed allow reason missing from inventory")
	}
	if !strings.Contains(out, "allow directive(s), 1 malformed") {
		t.Errorf("summary line missing or wrong: %s", out)
	}

	stdout.Reset()
	code = run([]string{"-allows", "-json", "internal/lint/testdata/walltime"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("json exit = %d, want 1", code)
	}
	var inv []struct {
		File      string `json:"file"`
		Line      int    `json:"line"`
		Check     string `json:"check"`
		Reason    string `json:"reason"`
		Malformed bool   `json:"malformed"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &inv); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, stdout.String())
	}
	var malformed int
	for _, e := range inv {
		if e.File == "" || e.Line == 0 || e.Check == "" {
			t.Errorf("incomplete entry %+v", e)
		}
		if e.Malformed {
			malformed++
		}
	}
	if len(inv) < 3 || malformed != 1 {
		t.Errorf("got %d entries (%d malformed), want >=3 with exactly 1 malformed", len(inv), malformed)
	}
}

// TestGraphDump: -graph renders the call graph with every edge kind,
// sorted and byte-stable.
func TestGraphDump(t *testing.T) {
	chdirRepoRoot(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-graph", "internal/lint/testdata/callgraph"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{" -> ", "[call]", "[interface]", "[ref]"} {
		if !strings.Contains(out, want) {
			t.Errorf("-graph output missing %q", want)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !sort.StringsAreSorted(lines) {
		t.Error("-graph output is not sorted")
	}
}

// TestCleanPackage: a real, contract-clean package exits 0.
func TestCleanPackage(t *testing.T) {
	chdirRepoRoot(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"./internal/sim"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("internal/sim should be clean; exit %d, out: %s", code, stdout.String())
	}
}
