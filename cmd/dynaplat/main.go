// Command dynaplat drives the model toolchain:
//
//	dynaplat check <model.dsl>                   validate a model, print findings
//	dynaplat matrix <model.dsl>                  print the derived access matrix
//	dynaplat simulate <model.dsl> [-virtual 5s]  deploy and simulate, print stats
//	dynaplat explore <model.dsl> [-method M]     run DSE (greedy|anneal|exhaustive)
//	dynaplat schedule <model.dsl>                print synthesized TT tables
//	dynaplat pareto <model.dsl>                  print the multi-objective front
//	dynaplat generate <model.dsl> [-out DIR]     emit app stubs + middleware config
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"dynaplat/internal/codegen"
	"dynaplat/internal/dse"
	"dynaplat/internal/model"
	"dynaplat/internal/platform"
	"dynaplat/internal/sched"
	"dynaplat/internal/sim"
	"dynaplat/internal/soa"
	"dynaplat/internal/tsn"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	cmd, path := os.Args[1], os.Args[2]
	sys := load(path)
	switch cmd {
	case "check":
		check(sys)
	case "matrix":
		fmt.Print(model.ExtractAccessMatrix(sys))
	case "simulate":
		simulate(sys, os.Args[3:])
	case "explore":
		explore(sys, os.Args[3:])
	case "schedule":
		schedule(sys)
	case "pareto":
		pareto(sys)
	case "generate":
		generate(sys, os.Args[3:])
	default:
		usage()
	}
}

// generate writes application stubs and the middleware configuration
// derived from the model (§2.2's "generate code stubs, configurations
// for communication stacks").
func generate(sys *model.System, args []string) {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	outDir := fs.String("out", "gen-out", "output directory")
	fs.Parse(args)
	files, err := codegen.GenerateAll(sys)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynaplat:", err)
		os.Exit(1)
	}
	files["gen/middleware.conf"] = codegen.MiddlewareConfig(sys)
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		full := filepath.Join(*outDir, p)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "dynaplat:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(full, []byte(files[p]), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dynaplat:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", full)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr,
		"usage: dynaplat {check|matrix|simulate|explore|schedule|pareto|generate} <model.dsl> [flags]")
	os.Exit(2)
}

// schedule synthesizes and prints the time-triggered table of every RTOS
// ECU with placed deterministic apps.
func schedule(sys *model.System) {
	rep := model.Validate(sys)
	if !rep.OK() {
		fmt.Fprintf(os.Stderr, "dynaplat: model invalid: %v\n", rep.Errors()[0])
		os.Exit(1)
	}
	for _, ecu := range sys.ECUs {
		var tasks []sched.Task
		for _, a := range sys.AppsOn(ecu.Name) {
			if a.Kind != model.Deterministic {
				continue
			}
			tasks = append(tasks, sched.Task{
				Name: a.Name, Period: a.Period,
				WCET: ecu.ScaledWCET(a.WCET), Deadline: a.Deadline, Jitter: a.Jitter,
			})
		}
		if len(tasks) == 0 {
			continue
		}
		tbl, err := sched.Synthesize(tasks, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dynaplat: %s: %v\n", ecu.Name, err)
			os.Exit(1)
		}
		if err := tbl.Verify(tasks); err != nil {
			fmt.Fprintf(os.Stderr, "dynaplat: %s: verification failed: %v\n", ecu.Name, err)
			os.Exit(1)
		}
		fmt.Printf("%s: %s", ecu.Name, tbl)
	}
}

// pareto prints the multi-objective trade-off front.
func pareto(sys *model.System) {
	front := dse.ParetoFront(sys, 0, 1)
	if len(front) == 0 {
		fmt.Fprintln(os.Stderr, "dynaplat: no feasible placement")
		os.Exit(1)
	}
	fmt.Printf("%-4s %-9s %-9s %-10s\n", "#", "ecu-cost", "max-util", "cross-mbps")
	for i, p := range front {
		fmt.Printf("%-4d %-9d %-9.2f %-10.2f\n",
			i+1, p.Cost.ECUCost, p.Cost.MaxUtil, p.Cost.CrossMbps)
	}
}

func load(path string) *model.System {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynaplat:", err)
		os.Exit(2)
	}
	defer f.Close()
	sys, err := model.Parse(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynaplat:", err)
		os.Exit(2)
	}
	return sys
}

func check(sys *model.System) {
	rep := model.Validate(sys)
	for _, f := range rep.Findings {
		fmt.Println(f)
	}
	if !rep.OK() {
		fmt.Fprintf(os.Stderr, "dynaplat: model %s has errors\n", sys.Name)
		os.Exit(1)
	}
	fmt.Printf("model %s: %d ECUs, %d networks, %d apps, %d interfaces — OK\n",
		sys.Name, len(sys.ECUs), len(sys.Networks), len(sys.Apps), len(sys.Interfaces))
}

func simulate(sys *model.System, args []string) {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	virtual := fs.String("virtual", "5s", "virtual time to simulate (e.g. 500ms, 5s)")
	seed := fs.Uint64("seed", 1, "simulation seed")
	fs.Parse(args)
	d, err := model.ParseDuration(*virtual)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynaplat:", err)
		os.Exit(2)
	}
	k := sim.NewKernel(*seed)
	net := tsn.New(k, tsn.DefaultConfig("sim-net"))
	mw := soa.New(k, nil)
	mw.AddNetwork(net, 1400)
	p := platform.New(k, mw)
	if err := platform.Deploy(p, sys, platform.ModeIsolated, 0); err != nil {
		fmt.Fprintln(os.Stderr, "dynaplat:", err)
		os.Exit(1)
	}
	if err := p.StartAll(); err != nil {
		fmt.Fprintln(os.Stderr, "dynaplat:", err)
		os.Exit(1)
	}
	k.RunFor(d)
	fmt.Printf("simulated %v of %s (%d events)\n", d, sys.Name, k.EventCount)
	for _, ecu := range p.Nodes() {
		node := p.Node(ecu)
		fmt.Printf("%s (util %.2f):\n", ecu, node.Utilization())
		for _, app := range node.Apps() {
			inst := node.App(app)
			if inst.Spec.Kind == model.Deterministic {
				fmt.Printf("  %-16s acts=%-6d misses=%-4d resp p100=%v\n",
					app, inst.Activations, inst.Misses,
					inst.Response.PercentileDuration(100))
			} else {
				fmt.Printf("  %-16s jobs=%d\n", app, inst.JobsDone)
			}
		}
	}
}

func explore(sys *model.System, args []string) {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	method := fs.String("method", "anneal", "greedy|anneal|exhaustive")
	fs.Parse(args)
	w := dse.DefaultWeights()
	var res dse.Result
	var err error
	switch *method {
	case "greedy":
		res = dse.Greedy(sys, w)
	case "anneal":
		res = dse.Anneal(sys, w, dse.DefaultAnnealConfig())
	case "exhaustive":
		res, err = dse.Exhaustive(sys, w, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynaplat:", err)
		}
	default:
		fmt.Fprintf(os.Stderr, "dynaplat: unknown method %q\n", *method)
		os.Exit(2)
	}
	if !res.Feasible {
		fmt.Fprintln(os.Stderr, "dynaplat: no feasible placement found")
		os.Exit(1)
	}
	fmt.Printf("method=%s evaluations=%d cost=%.2f ecus=%d maxutil=%.2f cross=%.2fMbps\n",
		*method, res.Evaluated, res.Cost.Total, res.Cost.UsedECUs,
		res.Cost.MaxUtil, res.Cost.CrossMbps)
	apps := make([]string, 0, len(res.Placement))
	for a := range res.Placement {
		apps = append(apps, a)
	}
	sort.Strings(apps)
	for _, a := range apps {
		fmt.Printf("  %-20s -> %s\n", a, res.Placement[a])
	}
}
