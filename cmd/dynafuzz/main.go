// Command dynafuzz is the driver for the seeded scenario fuzzer
// (internal/fuzz, DESIGN.md §12). It generates random-but-valid
// dynamic-platform scenarios as a pure function of a seed, runs each
// through the full stack five times, and checks the platform's
// universal properties: re-run byte-identity, wheel-vs-heap kernel
// agreement, observation neutrality (plus byte-identical trace/metrics
// artifacts), mesh conservation, quiesce (no leaked timers), and
// rollback byte-identity.
//
// A failure reproduces from (generator version, seed) alone and is
// auto-shrunk to a minimal failing spec before reporting.
//
// Usage:
//
//	dynafuzz [flags]
//
//	dynafuzz -seeds 200              sweep seeds 1..200 (the verify gate)
//	dynafuzz -seed 42                replay one seed, print its report
//	dynafuzz -seeds 5000 -budget 5m  wide sweep, stop drawing new seeds
//	                                 when the wall-clock budget is spent
//	dynafuzz -json -seed 42          machine-readable report
//
// Exit status: 0 clean, 1 property violations, 2 usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"dynaplat/internal/fuzz"
	"dynaplat/internal/par"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dynafuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seeds := fs.Int("seeds", 200, "sweep seeds 1..N through the oracle")
	seed := fs.Uint64("seed", 0, "replay exactly this seed instead of sweeping")
	budget := fs.Duration("budget", 0, "wall-clock budget; stop claiming new seeds once spent (0 = unlimited)")
	workers := fs.Int("workers", 0, "parallel oracle workers (0 = GOMAXPROCS; each seed runs on its own kernels)")
	jsonOut := fs.Bool("json", false, "emit the failure reports as JSON")
	noShrink := fs.Bool("noshrink", false, "skip auto-shrinking failing specs")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: dynafuzz [flags]\n")
		fmt.Fprintf(stderr, "seeded scenario fuzzer for the platform's universal properties (DESIGN.md §12)\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "dynafuzz: unexpected arguments %v\n", fs.Args())
		return 2
	}
	if *seeds <= 0 && *seed == 0 {
		fmt.Fprintln(stderr, "dynafuzz: -seeds must be positive")
		return 2
	}

	var todo []uint64
	if *seed != 0 {
		todo = []uint64{*seed}
	} else {
		for s := 1; s <= *seeds; s++ {
			todo = append(todo, uint64(s))
		}
	}

	start := time.Now()
	reports := make([]*fuzz.Report, len(todo))
	var skipped atomic.Int64
	err := par.ForEach(len(todo), *workers, func(i int) {
		if *budget > 0 && time.Since(start) > *budget {
			skipped.Add(1)
			return
		}
		rep := fuzz.CheckSeed(todo[i])
		reports[i] = &rep
	})
	if err != nil {
		fmt.Fprintf(stderr, "dynafuzz: %v\n", err)
		return 2
	}

	type failure struct {
		Seed       uint64           `json:"seed"`
		Version    int              `json:"generator_version"`
		Violations []fuzz.Violation `json:"violations"`
		Shrunk     *fuzz.Spec       `json:"shrunk,omitempty"`
	}
	var failures []failure
	checked := 0
	for i, rep := range reports {
		if rep == nil {
			continue // budget-skipped
		}
		checked++
		if !rep.Failed() {
			continue
		}
		f := failure{Seed: todo[i], Version: fuzz.Version, Violations: rep.Violations}
		if !*noShrink {
			shrunk := fuzz.Shrink(rep.Spec, func(s fuzz.Spec) bool {
				return fuzz.Check(s).Failed()
			})
			f.Shrunk = &shrunk
		}
		failures = append(failures, f)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Version  int       `json:"generator_version"`
			Checked  int       `json:"checked"`
			Skipped  int64     `json:"budget_skipped,omitempty"`
			Failures []failure `json:"failures"`
		}{fuzz.Version, checked, skipped.Load(), failures}); err != nil {
			fmt.Fprintf(stderr, "dynafuzz: %v\n", err)
			return 2
		}
	} else {
		for _, f := range failures {
			fmt.Fprintf(stdout, "seed %d (generator v%d): %d violation(s)\n",
				f.Seed, f.Version, len(f.Violations))
			for _, v := range f.Violations {
				fmt.Fprintf(stdout, "  %-24s %s\n", v.Property+":", v.Detail)
			}
			if f.Shrunk != nil {
				fmt.Fprintf(stdout, "  shrunk spec (replay: dynafuzz -seed %d):\n%s\n",
					f.Seed, f.Shrunk.Render())
			}
		}
		fmt.Fprintf(stdout, "dynafuzz: %d seed(s) checked, %d failing", checked, len(failures))
		if n := skipped.Load(); n > 0 {
			fmt.Fprintf(stdout, ", %d skipped (budget)", n)
		}
		fmt.Fprintln(stdout)
	}
	if len(failures) > 0 {
		return 1
	}
	return 0
}
