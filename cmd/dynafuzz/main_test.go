package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dynaplat/internal/safety/update"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestSweepClean(t *testing.T) {
	code, out, errb := runCmd(t, "-seeds", "15")
	if code != 0 {
		t.Fatalf("exit %d, stdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if !strings.Contains(out, "15 seed(s) checked, 0 failing") {
		t.Fatalf("unexpected summary: %q", out)
	}
}

func TestReplaySingleSeed(t *testing.T) {
	code, out, _ := runCmd(t, "-seed", "9", "-json")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, out)
	}
	var rep struct {
		Checked  int `json:"checked"`
		Failures []any
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if rep.Checked != 1 || len(rep.Failures) != 0 {
		t.Fatalf("want 1 clean seed, got %+v", rep)
	}
}

// With a bug-zoo defect armed, the sweep must exit 1 and report a
// shrunk spec for the failing seed. Seed 9 is an update-tier seed with
// a bad image and an extra v2 interface (see testdata/fuzzcorpus), so
// the ghost-service rollback leak trips deterministically.
func TestSweepCatchesBugZoo(t *testing.T) {
	update.BugRollbackReofferAll = true
	defer func() { update.BugRollbackReofferAll = false }()
	code, out, _ := runCmd(t, "-seed", "9")
	if code != 1 {
		t.Fatalf("want exit 1, got %d:\n%s", code, out)
	}
	if !strings.Contains(out, "rollback-identity") {
		t.Fatalf("missing rollback-identity violation:\n%s", out)
	}
	if !strings.Contains(out, "shrunk spec") {
		t.Fatalf("missing shrunk spec:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCmd(t, "-bogus"); code != 2 {
		t.Fatalf("bad flag: want exit 2, got %d", code)
	}
	if code, _, _ := runCmd(t, "stray"); code != 2 {
		t.Fatalf("stray arg: want exit 2, got %d", code)
	}
	if code, _, _ := runCmd(t, "-seeds", "0"); code != 2 {
		t.Fatalf("zero seeds: want exit 2, got %d", code)
	}
}
