package main

import (
	"bytes"
	"strings"
	"testing"
)

// runCmd drives run() the way main would and captures both streams.
func runCmd(args ...string) (code int, stdout, stderr string) {
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestWorkerCountResolution(t *testing.T) {
	cases := []struct {
		parallel, explicit bool
		workers            int
		want               int
		wantErr            bool
	}{
		{parallel: true, workers: 0, want: -1}, // GOMAXPROCS (checked as ≥1)
		{parallel: false, explicit: true, workers: 0, want: 1},
		{parallel: true, workers: 1, want: 1},
		{parallel: false, explicit: true, workers: 1, want: 1},
		{parallel: true, workers: 4, want: 4},
		{parallel: true, explicit: true, workers: 4, want: 4},
		{parallel: false, explicit: true, workers: 4, wantErr: true},
		{parallel: true, workers: -3, wantErr: true},
		{parallel: false, explicit: true, workers: -3, wantErr: true},
	}
	for _, c := range cases {
		got, err := workerCount(c.parallel, c.explicit, c.workers)
		if c.wantErr {
			if err == nil {
				t.Errorf("workerCount(%v,%v,%d) accepted, want error", c.parallel, c.explicit, c.workers)
			}
			continue
		}
		if err != nil {
			t.Errorf("workerCount(%v,%v,%d): %v", c.parallel, c.explicit, c.workers, err)
			continue
		}
		if c.want == -1 {
			if got < 1 {
				t.Errorf("workerCount(%v,%v,%d) = %d, want ≥ 1", c.parallel, c.explicit, c.workers, got)
			}
		} else if got != c.want {
			t.Errorf("workerCount(%v,%v,%d) = %d, want %d", c.parallel, c.explicit, c.workers, got, c.want)
		}
	}
}

// TestSerialFlagHonored: -parallel=false runs serially and -workers on
// top of it is an explicit usage error, never a silent override.
func TestSerialFlagHonored(t *testing.T) {
	code, out, _ := runCmd("-parallel=false", "E1")
	if code != 0 {
		t.Fatalf("serial run exit %d", code)
	}
	if !strings.Contains(out, "E1") {
		t.Errorf("serial run produced no E1 table:\n%s", out)
	}

	code, _, errOut := runCmd("-parallel=false", "-workers", "4", "E1")
	if code != 2 {
		t.Fatalf("contradictory flags exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "-parallel=false contradicts -workers 4") {
		t.Errorf("contradiction not explained: %s", errOut)
	}
}

// TestWorkersImpliesParallel: -workers without -parallel fans out (and
// matches the serial rendering byte for byte).
func TestWorkersImpliesParallel(t *testing.T) {
	ids := []string{"E1", "E2", "E4"}
	code, serial, _ := runCmd(append([]string{"-parallel=false"}, ids...)...)
	if code != 0 {
		t.Fatalf("serial exit %d", code)
	}
	code, par, _ := runCmd(append([]string{"-workers", "3"}, ids...)...)
	if code != 0 {
		t.Fatalf("-workers 3 exit %d", code)
	}
	if serial != par {
		t.Error("-workers 3 rendering differs from serial run")
	}
}

func TestNegativeWorkersRejected(t *testing.T) {
	code, _, errOut := runCmd("-workers=-2", "E1")
	if code != 2 {
		t.Fatalf("negative workers exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "must be ≥ 0") {
		t.Errorf("negative workers not explained: %s", errOut)
	}
}

func TestListAndUnknownID(t *testing.T) {
	code, out, _ := runCmd("-list")
	if code != 0 || !strings.Contains(out, "E23") {
		t.Errorf("-list exit %d, output missing E23:\n%s", code, out)
	}
	code, _, errOut := runCmd("E9999")
	if code != 2 || !strings.Contains(errOut, "E9999") {
		t.Errorf("unknown id: exit %d, stderr %q", code, errOut)
	}
}
