// Command exprun regenerates the experiment tables of EXPERIMENTS.md.
//
//	exprun                # run every experiment (parallel across cores)
//	exprun E4 E7          # run a subset
//	exprun -list          # list experiment IDs
//	exprun -json          # machine-readable output (one JSON object per line)
//	exprun -parallel=false  # force the serial harness
//	exprun -workers 4     # cap the worker pool (implies -parallel)
//	exprun -trace t.json -metrics m.txt E21
//	                      # observed run: Chrome trace + metrics dump
//	exprun -tracecap N    # bound retained trace records per scope
//
// Experiments fan out across GOMAXPROCS workers by default; every
// experiment owns an independent simulation kernel, so parallel output
// is byte-identical to the serial run (tables are always emitted in
// canonical E1..E24 order).
//
// -workers and -parallel interact explicitly: -workers N (N ≥ 2)
// implies -parallel, -workers 1 is the serial harness, and combining
// an explicit -parallel=false with -workers N ≥ 2 is a contradiction
// and a usage error — the pool is never sized behind the user's back.
// Negative worker counts are rejected.
//
// -trace / -metrics switch to the observed serial harness (DESIGN.md
// §7): experiments with observed runners (see `exprun -list`) are
// instrumented end to end — kernel trace bridge, network frame taps,
// SOA publish→deliver spans, platform completion slices — and a
// per-experiment metrics summary is printed after each table.
// Observation never changes results, and both output files are
// byte-identical across runs for the same experiment set.
//
// Exit status is non-zero when any experiment's paper-derived
// expectation is violated.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"dynaplat/internal/experiments"
	"dynaplat/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// workerCount resolves the -parallel / -workers interaction. explicit
// reports whether the user set the flag on the command line (flags left
// at their defaults never conflict).
func workerCount(parallel bool, parallelExplicit bool, workers int) (int, error) {
	if workers < 0 {
		return 0, fmt.Errorf("-workers %d: worker count must be ≥ 0", workers)
	}
	switch {
	case workers == 0:
		if !parallel {
			return 1, nil
		}
		return runtime.GOMAXPROCS(0), nil
	case workers == 1:
		return 1, nil
	default: // workers ≥ 2 implies -parallel
		if parallelExplicit && !parallel {
			return 0, fmt.Errorf("-parallel=false contradicts -workers %d (a pool of %d is parallel)",
				workers, workers)
		}
		return workers, nil
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("exprun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list experiment IDs and exit")
	asJSON := fs.Bool("json", false, "emit JSON lines instead of tables")
	parallel := fs.Bool("parallel", true, "fan experiments out across a worker pool")
	workers := fs.Int("workers", 0,
		"worker pool size (0 = GOMAXPROCS; ≥2 implies -parallel; clashes with an explicit -parallel=false)")
	traceOut := fs.String("trace", "", "write a Chrome trace_event JSON file (observed serial run)")
	metricsOut := fs.String("metrics", "", "write a plain-text metrics dump (observed serial run)")
	traceCap := fs.Int("tracecap", 0, "max retained trace records per scope (0 = unbounded)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: exprun [flags] [experiment IDs]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	parallelExplicit := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "parallel" {
			parallelExplicit = true
		}
	})

	if *list {
		obsIDs := map[string]bool{}
		for _, id := range experiments.ObservableIDs() {
			obsIDs[id] = true
		}
		for _, id := range experiments.IDs() {
			if obsIDs[id] {
				fmt.Fprintln(stdout, id, "(observable)")
			} else {
				fmt.Fprintln(stdout, id)
			}
		}
		return 0
	}

	ids := fs.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}

	if *traceOut != "" || *metricsOut != "" {
		if err := runObserved(ids, *traceOut, *metricsOut, *traceCap, *asJSON, stdout); err != nil {
			fmt.Fprintln(stderr, "exprun:", err)
			return 2
		}
		return 0
	}

	n, err := workerCount(*parallel, parallelExplicit, *workers)
	if err != nil {
		fmt.Fprintln(stderr, "exprun:", err)
		fs.Usage()
		return 2
	}
	tables, err := experiments.RunTables(ids, n)
	if err != nil {
		fmt.Fprintln(stderr, "exprun:", err)
		return 2
	}

	violations := 0
	enc := json.NewEncoder(stdout)
	for _, t := range tables {
		if *asJSON {
			if err := enc.Encode(t); err != nil {
				fmt.Fprintln(stderr, "exprun:", err)
				return 2
			}
		} else {
			t.Render(stdout)
		}
		if !t.Holds {
			violations++
		}
	}
	if violations > 0 {
		fmt.Fprintf(stderr, "exprun: %d expectation(s) violated\n", violations)
		return 1
	}
	return 0
}

// runObserved executes the requested experiments serially with
// instrumentation and writes the combined trace/metrics artifacts.
func runObserved(ids []string, traceOut, metricsOut string, traceCap int, asJSON bool, stdout io.Writer) error {
	experiments.ObsTraceCap = traceCap
	var scopes []obs.Scope
	var runs []*experiments.ObsRun
	violations := 0
	enc := json.NewEncoder(stdout)
	for _, id := range ids {
		run, err := experiments.RunObserved(id)
		if err != nil {
			return err
		}
		runs = append(runs, run)
		scopes = append(scopes, run.TraceScopes()...)
		if asJSON {
			if err := enc.Encode(run.Table); err != nil {
				return err
			}
		} else {
			run.Table.Render(stdout)
		}
		fmt.Fprintf(stdout, "  metrics[%s]: %s\n\n", id, run.Summary())
		if !run.Table.Holds {
			violations++
		}
	}
	if traceOut != "" {
		if err := writeFileBuffered(traceOut, func(w *bufio.Writer) error {
			return obs.WriteChromeTrace(w, scopes)
		}); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote trace: %s (%d scopes)\n", traceOut, len(scopes))
	}
	if metricsOut != "" {
		if err := writeFileBuffered(metricsOut, func(w *bufio.Writer) error {
			for _, run := range runs {
				if err := run.WriteMetrics(w); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote metrics: %s\n", metricsOut)
	}
	if violations > 0 {
		return fmt.Errorf("%d expectation(s) violated", violations)
	}
	return nil
}

func writeFileBuffered(path string, fill func(*bufio.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := fill(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
