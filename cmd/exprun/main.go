// Command exprun regenerates the experiment tables of EXPERIMENTS.md.
//
//	exprun            # run every experiment
//	exprun E4 E7      # run a subset
//	exprun -list      # list experiment IDs
//	exprun -json      # machine-readable output (one JSON object per line)
//
// Exit status is non-zero when any experiment's paper-derived
// expectation is violated.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dynaplat/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	asJSON := flag.Bool("json", false, "emit JSON lines instead of tables")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	violations := 0
	enc := json.NewEncoder(os.Stdout)
	for _, id := range ids {
		t, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "exprun:", err)
			os.Exit(2)
		}
		if *asJSON {
			if err := enc.Encode(t); err != nil {
				fmt.Fprintln(os.Stderr, "exprun:", err)
				os.Exit(2)
			}
		} else {
			t.Render(os.Stdout)
		}
		if !t.Holds {
			violations++
		}
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "exprun: %d expectation(s) violated\n", violations)
		os.Exit(1)
	}
}
