// Command exprun regenerates the experiment tables of EXPERIMENTS.md.
//
//	exprun                # run every experiment (parallel across cores)
//	exprun E4 E7          # run a subset
//	exprun -list          # list experiment IDs
//	exprun -json          # machine-readable output (one JSON object per line)
//	exprun -parallel=false  # force the serial harness
//	exprun -workers 4     # cap the worker pool
//
// Experiments fan out across GOMAXPROCS workers by default; every
// experiment owns an independent simulation kernel, so parallel output
// is byte-identical to the serial run (tables are always emitted in
// canonical E1..E21 order).
//
// Exit status is non-zero when any experiment's paper-derived
// expectation is violated.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"dynaplat/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	asJSON := flag.Bool("json", false, "emit JSON lines instead of tables")
	parallel := flag.Bool("parallel", true, "fan experiments out across a worker pool")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS; implies -parallel)")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	n := 1
	if *parallel || *workers > 0 {
		n = *workers
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
	}
	tables, err := experiments.RunTables(ids, n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "exprun:", err)
		os.Exit(2)
	}

	violations := 0
	enc := json.NewEncoder(os.Stdout)
	for _, t := range tables {
		if *asJSON {
			if err := enc.Encode(t); err != nil {
				fmt.Fprintln(os.Stderr, "exprun:", err)
				os.Exit(2)
			}
		} else {
			t.Render(os.Stdout)
		}
		if !t.Holds {
			violations++
		}
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "exprun: %d expectation(s) violated\n", violations)
		os.Exit(1)
	}
}
