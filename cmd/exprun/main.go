// Command exprun regenerates the experiment tables of EXPERIMENTS.md.
//
//	exprun                # run every experiment (parallel across cores)
//	exprun E4 E7          # run a subset
//	exprun -list          # list experiment IDs
//	exprun -json          # machine-readable output (one JSON object per line)
//	exprun -parallel=false  # force the serial harness
//	exprun -workers 4     # cap the worker pool
//	exprun -trace t.json -metrics m.txt E21
//	                      # observed run: Chrome trace + metrics dump
//	exprun -tracecap N    # bound retained trace records per scope
//
// Experiments fan out across GOMAXPROCS workers by default; every
// experiment owns an independent simulation kernel, so parallel output
// is byte-identical to the serial run (tables are always emitted in
// canonical E1..E24 order).
//
// -trace / -metrics switch to the observed serial harness (DESIGN.md
// §7): experiments with observed runners (see `exprun -list`) are
// instrumented end to end — kernel trace bridge, network frame taps,
// SOA publish→deliver spans, platform completion slices — and a
// per-experiment metrics summary is printed after each table.
// Observation never changes results, and both output files are
// byte-identical across runs for the same experiment set.
//
// Exit status is non-zero when any experiment's paper-derived
// expectation is violated.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"dynaplat/internal/experiments"
	"dynaplat/internal/obs"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	asJSON := flag.Bool("json", false, "emit JSON lines instead of tables")
	parallel := flag.Bool("parallel", true, "fan experiments out across a worker pool")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS; implies -parallel)")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON file (observed serial run)")
	metricsOut := flag.String("metrics", "", "write a plain-text metrics dump (observed serial run)")
	traceCap := flag.Int("tracecap", 0, "max retained trace records per scope (0 = unbounded)")
	flag.Parse()

	if *list {
		obsIDs := map[string]bool{}
		for _, id := range experiments.ObservableIDs() {
			obsIDs[id] = true
		}
		for _, id := range experiments.IDs() {
			if obsIDs[id] {
				fmt.Println(id, "(observable)")
			} else {
				fmt.Println(id)
			}
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}

	if *traceOut != "" || *metricsOut != "" {
		if err := runObserved(ids, *traceOut, *metricsOut, *traceCap, *asJSON); err != nil {
			fmt.Fprintln(os.Stderr, "exprun:", err)
			os.Exit(2)
		}
		return
	}

	n := 1
	if *parallel || *workers > 0 {
		n = *workers
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
	}
	tables, err := experiments.RunTables(ids, n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "exprun:", err)
		os.Exit(2)
	}

	violations := 0
	enc := json.NewEncoder(os.Stdout)
	for _, t := range tables {
		if *asJSON {
			if err := enc.Encode(t); err != nil {
				fmt.Fprintln(os.Stderr, "exprun:", err)
				os.Exit(2)
			}
		} else {
			t.Render(os.Stdout)
		}
		if !t.Holds {
			violations++
		}
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "exprun: %d expectation(s) violated\n", violations)
		os.Exit(1)
	}
}

// runObserved executes the requested experiments serially with
// instrumentation and writes the combined trace/metrics artifacts.
func runObserved(ids []string, traceOut, metricsOut string, traceCap int, asJSON bool) error {
	experiments.ObsTraceCap = traceCap
	var scopes []obs.Scope
	var runs []*experiments.ObsRun
	violations := 0
	enc := json.NewEncoder(os.Stdout)
	for _, id := range ids {
		run, err := experiments.RunObserved(id)
		if err != nil {
			return err
		}
		runs = append(runs, run)
		scopes = append(scopes, run.TraceScopes()...)
		if asJSON {
			if err := enc.Encode(run.Table); err != nil {
				return err
			}
		} else {
			run.Table.Render(os.Stdout)
		}
		fmt.Printf("  metrics[%s]: %s\n\n", id, run.Summary())
		if !run.Table.Holds {
			violations++
		}
	}
	if traceOut != "" {
		if err := writeFileBuffered(traceOut, func(w *bufio.Writer) error {
			return obs.WriteChromeTrace(w, scopes)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote trace: %s (%d scopes)\n", traceOut, len(scopes))
	}
	if metricsOut != "" {
		if err := writeFileBuffered(metricsOut, func(w *bufio.Writer) error {
			for _, run := range runs {
				if err := run.WriteMetrics(w); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
		fmt.Printf("wrote metrics: %s\n", metricsOut)
	}
	if violations > 0 {
		return fmt.Errorf("%d expectation(s) violated", violations)
	}
	return nil
}

func writeFileBuffered(path string, fill func(*bufio.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := fill(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
