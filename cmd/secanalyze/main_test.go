package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeGraph(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseGraphValid(t *testing.T) {
	p := writeGraph(t, `
# comment
node a entry
node b
edge a b 0.5
`)
	g, err := parseGraph(p)
	if err != nil {
		t.Fatal(err)
	}
	r := g.Exploitability()
	if r.Of("b") != 0.5 {
		t.Errorf("P(b) = %v", r.Of("b"))
	}
}

func TestParseGraphErrors(t *testing.T) {
	cases := []struct{ content, wantSub string }{
		{"node", "node needs a name"},
		{"edge a b", "edge wants"},
		{"node a\nedge a b 0.5", "unknown node"},
		{"node a\nnode b\nedge a b nine", "bad probability"},
		{"frobnicate", "unknown keyword"},
	}
	for _, c := range cases {
		p := writeGraph(t, c.content)
		_, err := parseGraph(p)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("content %q: err = %v, want %q", c.content, err, c.wantSub)
		}
	}
	if _, err := parseGraph(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Error("missing file accepted")
	}
}

const smokeGraph = `
node telematics entry
node gateway
node brake
edge telematics gateway 0.2
edge gateway brake 0.3
`

// TestRunSmoke drives the whole CLI through run(): ranking output,
// what-if hardening, and every exit-code path.
func TestRunSmoke(t *testing.T) {
	p := writeGraph(t, smokeGraph)
	var stdout, stderr bytes.Buffer
	if code := run([]string{p}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"exploitability ranking:", "telematics", "gateway", "brake", "most probable attack"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunHarden(t *testing.T) {
	p := writeGraph(t, smokeGraph)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-harden", "telematics,gateway,0.05", p}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "hardening telematics→gateway to 0.050") {
		t.Errorf("missing hardening line:\n%s", stdout.String())
	}
}

func TestRunExitCodes(t *testing.T) {
	p := writeGraph(t, smokeGraph)
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no args prints usage", nil, 2},
		{"two positionals", []string{p, p}, 2},
		{"missing graph file", []string{filepath.Join(t.TempDir(), "nope.txt")}, 2},
		{"bad flag", []string{"-frobnicate", p}, 2},
		{"malformed harden", []string{"-harden", "a,b", p}, 2},
		{"bad harden probability", []string{"-harden", "a,b,NaNope", p}, 2},
		{"unknown harden edge", []string{"-harden", "nope,gateway,0.1", p}, 1},
	}
	for _, c := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(c.args, &stdout, &stderr); code != c.want {
			t.Errorf("%s: exit = %d, want %d (stderr: %s)", c.name, code, c.want, stderr.String())
		}
	}
	// Usage goes to stderr and is non-empty.
	var stdout, stderr bytes.Buffer
	run(nil, &stdout, &stderr)
	if !strings.Contains(stderr.String(), "usage: secanalyze") {
		t.Errorf("usage not printed on no-args: %s", stderr.String())
	}
}
