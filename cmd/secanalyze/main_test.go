package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeGraph(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseGraphValid(t *testing.T) {
	p := writeGraph(t, `
# comment
node a entry
node b
edge a b 0.5
`)
	g, err := parseGraph(p)
	if err != nil {
		t.Fatal(err)
	}
	r := g.Exploitability()
	if r.Of("b") != 0.5 {
		t.Errorf("P(b) = %v", r.Of("b"))
	}
}

func TestParseGraphErrors(t *testing.T) {
	cases := []struct{ content, wantSub string }{
		{"node", "node needs a name"},
		{"edge a b", "edge wants"},
		{"node a\nedge a b 0.5", "unknown node"},
		{"node a\nnode b\nedge a b nine", "bad probability"},
		{"frobnicate", "unknown keyword"},
	}
	for _, c := range cases {
		p := writeGraph(t, c.content)
		_, err := parseGraph(p)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("content %q: err = %v, want %q", c.content, err, c.wantSub)
		}
	}
	if _, err := parseGraph(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Error("missing file accepted")
	}
}
