// Command secanalyze evaluates an architecture's security with the
// probabilistic exploit-graph analysis (paper Section 5.4, reference
// [11]).
//
// The graph file is line-oriented:
//
//	node telematics entry
//	node gateway
//	node brake
//	edge telematics gateway 0.2
//	edge gateway brake 0.3
//
// Usage:
//
//	secanalyze graph.txt                      print exploitability ranking
//	secanalyze graph.txt -harden A,B,0.05     what-if: harden edge A→B
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dynaplat/internal/security/analysis"
)

func main() {
	harden := flag.String("harden", "", "what-if hardening: from,to,newP")
	asset := flag.String("asset", "", "asset for the what-if query (default: most exposed)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: secanalyze [flags] <graph.txt>")
		os.Exit(2)
	}
	g, err := parseGraph(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "secanalyze:", err)
		os.Exit(2)
	}
	res := g.Exploitability()
	rank := res.Rank()
	fmt.Println("exploitability ranking:")
	for _, r := range rank {
		fmt.Printf("  %-20s %.4f\n", r.Asset, r.P)
	}
	// Most probable attack chain against the most exposed non-entry asset.
	for _, r := range rank {
		if r.P >= 0.9999 || r.P == 0 {
			continue
		}
		if p, ok := g.MostProbablePath(r.Asset); ok {
			fmt.Printf("most probable attack on %s: %s\n", r.Asset, p)
		}
		break
	}
	if *harden == "" {
		return
	}
	parts := strings.Split(*harden, ",")
	if len(parts) != 3 {
		fmt.Fprintln(os.Stderr, "secanalyze: -harden wants from,to,newP")
		os.Exit(2)
	}
	p, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		fmt.Fprintln(os.Stderr, "secanalyze: bad probability:", err)
		os.Exit(2)
	}
	target := *asset
	if target == "" {
		// Default to the most exposed non-entry asset (entries sit at
		// P=1 by definition and are not interesting what-if targets).
		for _, r := range rank {
			if r.P < 0.9999 {
				target = r.Asset
				break
			}
		}
	}
	if target == "" && len(rank) > 0 {
		target = rank[0].Asset
	}
	after, err := g.CutEffect(parts[0], parts[1], p, target)
	if err != nil {
		fmt.Fprintln(os.Stderr, "secanalyze:", err)
		os.Exit(1)
	}
	fmt.Printf("hardening %s→%s to %.3f: P(%s) %.4f → %.4f\n",
		parts[0], parts[1], p, target, res.Of(target), after)
}

func parseGraph(path string) (*analysis.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g := analysis.NewGraph()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "node":
			if len(fields) < 2 {
				return nil, fmt.Errorf("line %d: node needs a name", lineNo)
			}
			entry := len(fields) > 2 && fields[2] == "entry"
			g.AddNode(fields[1], entry)
		case "edge":
			if len(fields) != 4 {
				return nil, fmt.Errorf("line %d: edge wants: edge <from> <to> <p>", lineNo)
			}
			p, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad probability %q", lineNo, fields[3])
			}
			if err := g.AddEdge(fields[1], fields[2], p); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("line %d: unknown keyword %q", lineNo, fields[0])
		}
	}
	return g, sc.Err()
}
