// Command secanalyze evaluates an architecture's security with the
// probabilistic exploit-graph analysis (paper Section 5.4, reference
// [11]).
//
// The graph file is line-oriented:
//
//	node telematics entry
//	node gateway
//	node brake
//	edge telematics gateway 0.2
//	edge gateway brake 0.3
//
// Usage:
//
//	secanalyze graph.txt                      print exploitability ranking
//	secanalyze -harden A,B,0.05 graph.txt     what-if: harden edge A→B
//
// Exit status: 0 success, 1 analysis error, 2 usage or input error.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dynaplat/internal/security/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("secanalyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	harden := fs.String("harden", "", "what-if hardening: from,to,newP")
	asset := fs.String("asset", "", "asset for the what-if query (default: most exposed)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: secanalyze [flags] <graph.txt>\n")
		fmt.Fprintf(stderr, "probabilistic exploit-graph analysis; graph lines: 'node <name> [entry]' / 'edge <from> <to> <p>'\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	g, err := parseGraph(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "secanalyze:", err)
		return 2
	}
	res := g.Exploitability()
	rank := res.Rank()
	fmt.Fprintln(stdout, "exploitability ranking:")
	for _, r := range rank {
		fmt.Fprintf(stdout, "  %-20s %.4f\n", r.Asset, r.P)
	}
	// Most probable attack chain against the most exposed non-entry asset.
	for _, r := range rank {
		if r.P >= 0.9999 || r.P == 0 {
			continue
		}
		if p, ok := g.MostProbablePath(r.Asset); ok {
			fmt.Fprintf(stdout, "most probable attack on %s: %s\n", r.Asset, p)
		}
		break
	}
	if *harden == "" {
		return 0
	}
	parts := strings.Split(*harden, ",")
	if len(parts) != 3 {
		fmt.Fprintln(stderr, "secanalyze: -harden wants from,to,newP")
		fs.Usage()
		return 2
	}
	p, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		fmt.Fprintln(stderr, "secanalyze: bad probability:", err)
		return 2
	}
	target := *asset
	if target == "" {
		// Default to the most exposed non-entry asset (entries sit at
		// P=1 by definition and are not interesting what-if targets).
		for _, r := range rank {
			if r.P < 0.9999 {
				target = r.Asset
				break
			}
		}
	}
	if target == "" && len(rank) > 0 {
		target = rank[0].Asset
	}
	after, err := g.CutEffect(parts[0], parts[1], p, target)
	if err != nil {
		fmt.Fprintln(stderr, "secanalyze:", err)
		return 1
	}
	fmt.Fprintf(stdout, "hardening %s→%s to %.3f: P(%s) %.4f → %.4f\n",
		parts[0], parts[1], p, target, res.Of(target), after)
	return 0
}

func parseGraph(path string) (*analysis.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g := analysis.NewGraph()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "node":
			if len(fields) < 2 {
				return nil, fmt.Errorf("line %d: node needs a name", lineNo)
			}
			entry := len(fields) > 2 && fields[2] == "entry"
			g.AddNode(fields[1], entry)
		case "edge":
			if len(fields) != 4 {
				return nil, fmt.Errorf("line %d: edge wants: edge <from> <to> <p>", lineNo)
			}
			p, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad probability %q", lineNo, fields[3])
			}
			if err := g.AddEdge(fields[1], fields[2], p); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("line %d: unknown keyword %q", lineNo, fields[0])
		}
	}
	return g, sc.Err()
}
