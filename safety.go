package dynaplat

import (
	"dynaplat/internal/model"
	"dynaplat/internal/safety/monitor"
	"dynaplat/internal/safety/redundancy"
	"dynaplat/internal/safety/update"
	"dynaplat/internal/security/auth"
	secpkg "dynaplat/internal/security/pkg"
)

// Safety and security facade: the update orchestrator (paper §3.2),
// fail-operational redundancy (§3.3), runtime monitoring (§3.4), package
// security (§4.1) and binding authorization (§4.2).

type (
	// App is an application descriptor in the system model.
	App = model.App
	// UpdateManager orchestrates staged and stop-restart updates.
	UpdateManager = update.Manager
	// UpdateReport summarizes a completed update.
	UpdateReport = update.Report
	// UpdateOffers lists interfaces the new version re-offers.
	UpdateOffers = update.Offers
	// RedundancyManager replicates applications across ECUs.
	RedundancyManager = redundancy.Manager
	// RedundancyGroup is one replicated application.
	RedundancyGroup = redundancy.Group
	// RedundancyConfig tunes heartbeats and promotion.
	RedundancyConfig = redundancy.Config
	// Monitor watches deterministic applications at runtime.
	Monitor = monitor.Monitor
	// MonitorConfig tunes the runtime monitor.
	MonitorConfig = monitor.Config
	// PackageAuthority signs software packages.
	PackageAuthority = secpkg.Authority
	// SignedPackage is a package plus its authority signature.
	SignedPackage = secpkg.Signed
	// TrustStore holds accepted authority keys.
	TrustStore = secpkg.TrustStore
	// AuthBroker issues binding tickets from the access matrix.
	AuthBroker = auth.Broker
)

// NewUpdateManager creates an update orchestrator for a simulation.
func NewUpdateManager(s *Simulation) *UpdateManager {
	return update.NewManager(s.Platform, s.Middleware, update.DefaultConfig())
}

// NewRedundancyManager creates a redundancy manager for a simulation.
func NewRedundancyManager(s *Simulation) *RedundancyManager {
	return redundancy.NewManager(s.Platform)
}

// DefaultRedundancyConfig returns the standard heartbeat tuning.
func DefaultRedundancyConfig() RedundancyConfig { return redundancy.DefaultConfig() }

// NewMonitor attaches a runtime monitor to a node.
func NewMonitor(n *Node) *Monitor { return monitor.New(n, monitor.DefaultConfig()) }

// NewPackageAuthority creates a deterministic signing authority.
func NewPackageAuthority(name string, seed [32]byte) *PackageAuthority {
	return secpkg.NewAuthority(name, seed)
}

// NewTrustStore creates an empty trust store.
func NewTrustStore() *TrustStore { return secpkg.NewTrustStore() }
