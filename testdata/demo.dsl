# Demo vehicle: consolidated central platform + zone ECU + head unit.
system DemoVehicle
ecu CPM  cpu=400MHz mem=8MB  mmu crypto os=rtos  cost=40
ecu Zone cpu=200MHz mem=1MB  mmu        os=rtos  cost=12
ecu Head cpu=1GHz   mem=64MB mmu        os=posix cost=25
network Backbone type=ethernet rate=100Mbps attach=CPM,Zone,Head
network Body     type=can      rate=500kbps attach=CPM,Zone

app Brake      kind=da  asil=D period=10ms wcet=2ms deadline=10ms jitter=1ms mem=64KB on=CPM
app Suspension kind=da  asil=C period=5ms  wcet=1ms mem=64KB on=Zone
app Wiper      kind=da  asil=B period=50ms wcet=5ms mem=32KB on=Zone
app Media      kind=nda asil=QM mem=8MB on=Head

iface BrakeStatus owner=Brake paradigm=event payload=16B period=10ms latency=8ms net=Backbone
iface WiperCtl    owner=Wiper paradigm=message payload=8B period=100ms net=Body
bind Media -> BrakeStatus
bind Suspension -> BrakeStatus
