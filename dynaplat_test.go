package dynaplat

import (
	"strings"
	"testing"
)

const demoDSL = `
system Demo
ecu CPM cpu=400MHz mem=4MB mmu crypto os=rtos cost=40
ecu Zone cpu=200MHz mem=1MB mmu os=rtos cost=12
ecu Head cpu=1000MHz mem=64MB mmu os=posix cost=25
network Backbone type=ethernet rate=100Mbps attach=CPM,Zone,Head
network Body type=can rate=500kbps attach=CPM,Zone
app Brake kind=da asil=D period=10ms wcet=2ms deadline=10ms jitter=1ms mem=64KB on=CPM
app Suspension kind=da asil=C period=5ms wcet=1ms mem=64KB on=Zone
app Media kind=nda asil=QM mem=4MB on=Head
iface BrakeStatus owner=Brake paradigm=event payload=16B period=10ms latency=8ms net=Backbone
bind Media -> BrakeStatus
`

func TestFromDSLEndToEnd(t *testing.T) {
	s, err := FromDSL(demoDSL, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Networks) != 2 {
		t.Fatalf("networks = %d", len(s.Networks))
	}
	// Consumer subscribes through the facade endpoint.
	media, err := s.Endpoint("Media")
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	if err := media.Subscribe("BrakeStatus", func(Event) { events++ }); err != nil {
		t.Fatal(err)
	}
	// Brake publishes its status on every activation.
	brakeEp, _ := s.Endpoint("Brake")
	s.App("Brake").Behavior.OnActivate = func(int64) {
		brakeEp.Publish("BrakeStatus", 16, nil)
	}
	if err := s.StartAll(); err != nil {
		t.Fatal(err)
	}
	s.Run(1 * Second)
	brake := s.App("Brake")
	if brake.Activations != 100 {
		t.Errorf("brake activations = %d, want 100", brake.Activations)
	}
	if brake.Misses != 0 {
		t.Errorf("brake misses = %d", brake.Misses)
	}
	if events != 100 {
		t.Errorf("delivered events = %d, want 100", events)
	}
	if s.Node("CPM") == nil || s.Node("Ghost") != nil {
		t.Error("Node lookup wrong")
	}
	if s.App("Ghost") != nil {
		t.Error("App(Ghost) non-nil")
	}
	if _, err := s.Endpoint("Ghost"); err == nil {
		t.Error("Endpoint(Ghost) succeeded")
	}
}

func TestFromDSLRejectsInvalid(t *testing.T) {
	bad := strings.Replace(demoDSL, "on=CPM", "on=Head", 1) // DA on POSIX
	if _, err := FromDSL(bad, Options{}); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := FromDSL("ecu X cpu=wat", Options{}); err == nil {
		t.Error("syntax error accepted")
	}
}

func TestValidateModelFacade(t *testing.T) {
	sys, err := ParseModel(demoDSL)
	if err != nil {
		t.Fatal(err)
	}
	if findings, ok := ValidateModel(sys); !ok {
		t.Errorf("demo invalid: %v", findings)
	}
	sys.Placement["Brake"] = "Head"
	findings, ok := ValidateModel(sys)
	if ok {
		t.Error("broken model validated")
	}
	found := false
	for _, f := range findings {
		if strings.Contains(f, "da-needs-rtos") {
			found = true
		}
	}
	if !found {
		t.Errorf("findings = %v", findings)
	}
}

func TestFromDSLWithFlexRay(t *testing.T) {
	dsl := `
system FR
ecu A cpu=100MHz mem=1MB mmu os=rtos
ecu B cpu=100MHz mem=1MB mmu os=rtos
network Chassis type=flexray rate=10Mbps attach=A,B
app P kind=da asil=C period=10ms wcet=1ms mem=64KB on=A
app C kind=nda mem=64KB on=B
iface Pos owner=P paradigm=event payload=16B period=10ms net=Chassis
bind C -> Pos
`
	s, err := FromDSL(dsl, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	ep, _ := s.Endpoint("C")
	if err := ep.Subscribe("Pos", func(Event) { got++ }); err != nil {
		t.Fatal(err)
	}
	pEp, _ := s.Endpoint("P")
	s.App("P").Behavior.OnActivate = func(int64) { pEp.Publish("Pos", 16, nil) }
	s.StartAll()
	s.Run(500 * Millisecond)
	if got < 40 {
		t.Errorf("FlexRay deliveries = %d, want ~50", got)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() int64 {
		s, err := FromDSL(demoDSL, Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		s.StartAll()
		s.Run(2 * Second)
		return s.App("Suspension").Activations + int64(s.Kernel.EventCount)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("runs diverged: %d vs %d", a, b)
	}
}
