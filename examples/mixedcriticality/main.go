// Mixedcriticality demonstrates the paper's Figure 2 end to end: an
// ASIL-D control application and a bursty infotainment application share
// one consolidated ECU. With the dynamic platform's time-triggered
// isolation the control app never misses a deadline no matter how hard
// infotainment hammers the CPU; the same scenario on a conventional
// shared scheduler misses constantly. Run with:
//
//	go run ./examples/mixedcriticality
package main

import (
	"fmt"
	"log"

	"dynaplat"
)

const vehicle = `
system MixedCriticality
ecu CPM cpu=200MHz mem=16MB mmu os=rtos cost=40
app Lane  kind=da  asil=D period=10ms wcet=4ms deadline=10ms jitter=1ms mem=512KB on=CPM
app Cruise kind=da asil=C period=20ms wcet=4ms deadline=20ms mem=256KB on=CPM
app Media kind=nda asil=QM mem=8MB on=CPM
`

func run(mode dynaplat.Mode) {
	s, err := dynaplat.FromDSL(vehicle, dynaplat.Options{Seed: 99, Mode: mode})
	if err != nil {
		log.Fatal(err)
	}
	if err := s.StartAll(); err != nil {
		log.Fatal(err)
	}

	// Infotainment floods the CPU with oversized decode jobs.
	media := s.App("Media")
	var pump func()
	pump = func() { media.Submit(30*dynaplat.Millisecond, pump) }
	pump()

	s.Run(10 * dynaplat.Second)

	fmt.Printf("mode=%-8s  ", mode)
	for _, name := range []string{"Lane", "Cruise"} {
		a := s.App(name)
		fmt.Printf("%s: %d/%d missed (worst %v)   ", name, a.Misses,
			a.Activations, a.Response.PercentileDuration(100))
	}
	fmt.Printf("Media jobs: %d\n", media.JobsDone)
}

func main() {
	fmt.Println("Figure 2: DA + NDA on one ECU, infotainment overload")
	run(dynaplat.ModeIsolated) // the dynamic platform
	run(dynaplat.ModeShared)   // conventional shared scheduling
	fmt.Println("\nisolated mode keeps every control deadline; shared mode does not.")
}
