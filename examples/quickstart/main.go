// Quickstart: model a two-ECU vehicle in the DSL, validate it, simulate
// one virtual second and print what the deterministic brake application
// did. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dynaplat"
)

const vehicle = `
system Quickstart
ecu CPM  cpu=400MHz mem=4MB mmu crypto os=rtos cost=40
ecu Head cpu=1GHz   mem=64MB mmu os=posix cost=25
network Backbone type=ethernet rate=100Mbps attach=CPM,Head

app Brake kind=da  asil=D period=10ms wcet=2ms deadline=10ms jitter=1ms mem=64KB on=CPM
app Dash  kind=nda asil=QM mem=8MB on=Head

iface BrakeStatus owner=Brake paradigm=event payload=16B period=10ms latency=8ms net=Backbone
bind Dash -> BrakeStatus
`

func main() {
	// 1. Parse and validate the model (the paper's §2.2 verification
	// engine runs inside FromDSL as well — this is just to show it).
	sys, err := dynaplat.ParseModel(vehicle)
	if err != nil {
		log.Fatal(err)
	}
	if findings, ok := dynaplat.ValidateModel(sys); !ok {
		log.Fatalf("model invalid: %v", findings)
	}

	// 2. Build the full simulation: networks, middleware, platform.
	s, err := dynaplat.FromModel(sys, dynaplat.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Give the brake a behavior: publish its status every activation.
	brakeEp, _ := s.Endpoint("Brake")
	s.App("Brake").Behavior.OnActivate = func(job int64) {
		brakeEp.Publish("BrakeStatus", 16, job)
	}

	// 4. The dashboard subscribes (binding is authorized against the
	// model-declared access matrix when an authorizer is installed).
	received := 0
	dashEp, _ := s.Endpoint("Dash")
	if err := dashEp.Subscribe("BrakeStatus", func(ev dynaplat.Event) {
		received++
	}); err != nil {
		log.Fatal(err)
	}

	// 5. Run one virtual second.
	if err := s.StartAll(); err != nil {
		log.Fatal(err)
	}
	s.Run(1 * dynaplat.Second)

	brake := s.App("Brake")
	fmt.Printf("brake: %d activations, %d deadline misses, worst response %v\n",
		brake.Activations, brake.Misses, brake.Response.PercentileDuration(100))
	fmt.Printf("dash:  received %d brake status events\n", received)
	fmt.Printf("CPM deterministic utilization: %.2f\n", s.Node("CPM").Utilization())
}
