// Soamesh exercises the complete service-oriented communication story of
// the paper's Figure 3 on one vehicle: runtime service discovery over the
// wire, the three paradigms (event, RPC, stream), DDS-style QoS (history
// for a late joiner, supervised deadlines), end-to-end protected safety
// payloads over a lossy legacy CAN bus bridged through a gateway. Run:
//
//	go run ./examples/soamesh
package main

import (
	"fmt"
	"log"

	"dynaplat/internal/can"
	"dynaplat/internal/gateway"
	"dynaplat/internal/network"
	"dynaplat/internal/sim"
	"dynaplat/internal/soa"
	"dynaplat/internal/tsn"
)

func main() {
	k := sim.NewKernel(11)
	backbone := tsn.New(k, tsn.DefaultConfig("backbone"))
	body := can.New(k, can.Config{Name: "body", BitsPerSecond: 500_000,
		FrameLossRate: 0.02}) // an aging, slightly lossy legacy bus
	mw := soa.New(k, nil)
	mw.AddNetwork(backbone, 1400)
	mw.AddNetwork(body, can.MaxPayload)

	// --- Discovery: the dashboard finds the climate service at runtime.
	climate := mw.Endpoint("climate", "cpm1")
	climate.Offer("CabinTemp", soa.OfferOpts{Network: "backbone"})
	climate.EnableHistory("CabinTemp", 1) // late joiners get the last value
	mw.Endpoint("dash", "head").Discover("CabinTemp", sim.Second,
		func(r soa.DiscoveryResult) {
			fmt.Printf("discovered CabinTemp: provider=%s rtt=%v\n", r.Provider, r.RTT)
		})

	// --- Event + QoS: publish temperature; the dash joins late but gets
	// the last value instantly; a deadline supervises liveness.
	temp := 21.5
	k.Every(0, 100*sim.Millisecond, func() {
		climate.Publish("CabinTemp", 8, temp)
	})
	k.RunFor(350 * sim.Millisecond) // dash joins late
	received := 0
	deadlineMisses := 0
	dash := mw.Endpoint("dash", "head")
	err := dash.SubscribeQoS("CabinTemp", soa.QoS{
		History:        1,
		Deadline:       300 * sim.Millisecond,
		OnDeadlineMiss: func(string, sim.Duration) { deadlineMisses++ },
	}, func(ev soa.Event) { received++ })
	if err != nil {
		log.Fatal(err)
	}

	// --- RPC with timeout: set the target temperature.
	climate.Offer("SetTemp", soa.OfferOpts{Network: "backbone",
		Handler: func(req any) (int, any, sim.Duration) {
			temp = req.(float64)
			return 1, true, 500 * sim.Microsecond
		}})
	dash.CallTimeout("SetTemp", 8, 19.0, 50*sim.Millisecond,
		func(soa.Event) { fmt.Println("SetTemp acknowledged") },
		func() { log.Fatal("SetTemp timed out") })

	// --- Stream: a camera feeds the head unit.
	cam := mw.Endpoint("cam", "cpm1")
	cam.Offer("RearView", soa.OfferOpts{Network: "backbone", Class: network.ClassBulk})
	rx := &soa.StreamReceiver{KeyInterval: 30}
	dash.Subscribe("RearView", rx.Consume)
	st := cam.OpenStream("RearView", 30)
	k.Every(k.Now(), 33*sim.Millisecond, func() { st.SendFrame(1200, nil) })

	// --- E2E over the lossy legacy bus, bridged to the backbone.
	gw := gateway.New(k, gateway.Config{Name: "gw", ProcDelay: 100 * sim.Microsecond})
	gw.AttachPort(body, can.MaxPayload)
	gw.AttachPort(backbone, 1400)
	gw.AddRoute(gateway.Route{FromNet: "body", ToNet: "backbone",
		ID: 0x42, Dst: "logger"})
	tx := &soa.E2ESender{DataID: 0x42}
	e2e := &soa.E2EReceiver{DataID: 0x42}
	// A dedicated logger station consumes the bridged safety stream
	// (stations are single-receiver: never re-Attach one the middleware
	// already owns).
	backbone.Attach("logger", func(d network.Delivery) {
		if d.Msg.ID != 0x42 {
			return
		}
		if buf, ok := d.Msg.Payload.([]byte); ok {
			e2e.Check(buf)
		}
	})
	body.Attach("wheelspeed", func(network.Delivery) {})
	k.Every(k.Now(), 10*sim.Millisecond, func() {
		body.Send(network.Message{ID: 0x42, Src: "wheelspeed", Bytes: 8,
			Payload: tx.Protect([]byte{1, 2, 3, 4})})
	})

	k.RunFor(10 * sim.Second)

	fmt.Printf("\nevents received by late joiner: %d (incl. 1 history sample)\n", received)
	fmt.Printf("QoS deadline misses: %d\n", deadlineMisses)
	fmt.Printf("final cabin target: %.1f°C\n", temp)
	fmt.Printf("stream: %d frames decoded, %d stalls, inter-frame jitter %v\n",
		rx.Frames, rx.Stalled, rx.InterFrame.Jitter())
	fmt.Printf("legacy bus: %d frames lost on the wire; E2E saw ok=%d loss-episodes=%d (crc=%d)\n",
		body.FramesLost, e2e.OK, e2e.Loss, e2e.WrongCRC)
	if e2e.Loss == 0 || body.FramesLost == 0 {
		log.Fatal("loss injection or detection inert")
	}
	fmt.Println("\nevery wire loss surfaced as a detected E2E gap — no silent data loss.")
}
