// Consolidation walks the paper's Figure 1 → Figure 2 migration end to
// end: a synthetic function fleet is packed onto a minimal set of
// computing platforms by design-space exploration, the Pareto trade-off
// curve is printed, the chosen deployment is simulated to prove every
// deadline holds, and finally a new function is admitted online by the
// Section 5.3-style admission controller. Run with:
//
//	go run ./examples/consolidation
package main

import (
	"fmt"
	"log"

	"dynaplat"
	"dynaplat/internal/admission"
	"dynaplat/internal/dse"
	"dynaplat/internal/model"
	"dynaplat/internal/sim"
	"dynaplat/internal/workload"
)

func main() {
	// A fleet of 12 control functions, 2 ADAS functions and 2
	// infotainment apps over 6 candidate computing platforms.
	rng := sim.NewRNG(2024)
	sys := workload.Fleet(rng, 6, 12, 2, 2, 1.5)

	// --- Design-space exploration (§2.3).
	w := dse.DefaultWeights()
	res := dse.Anneal(sys, w, dse.DefaultAnnealConfig())
	if !res.Feasible {
		log.Fatal("no feasible consolidated deployment")
	}
	fmt.Printf("annealing: %d evaluations → %d ECUs, cost %d, peak util %.2f\n",
		res.Evaluated, res.Cost.UsedECUs, res.Cost.ECUCost, res.Cost.MaxUtil)

	fmt.Println("\nPareto front (cost vs headroom vs traffic):")
	for i, p := range dynaplat.ParetoFront(sys, 30_000, 7) {
		fmt.Printf("  #%d  ecu-cost=%-4d max-util=%.2f cross=%.2f Mbps\n",
			i+1, p.Cost.ECUCost, p.Cost.MaxUtil, p.Cost.CrossMbps)
	}

	// --- Deploy the annealed placement and prove it in simulation.
	for app, ecu := range res.Placement {
		sys.Placement[app] = ecu
	}
	s, err := dynaplat.FromModel(sys, dynaplat.Options{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	if err := s.StartAll(); err != nil {
		log.Fatal(err)
	}
	s.Run(2 * dynaplat.Second)
	var acts, misses int64
	for _, ecu := range s.Platform.Nodes() {
		node := s.Node(ecu)
		for _, app := range node.Apps() {
			inst := node.App(app)
			acts += inst.Activations
			misses += inst.Misses
		}
	}
	fmt.Printf("\nsimulated 2s: %d deterministic activations, %d misses\n", acts, misses)

	// --- Online admission of an aftermarket function (§5.3).
	ctrl := admission.NewController(sys)
	req := admission.Request{
		App: model.App{Name: "parkassist", Kind: model.Deterministic,
			ASIL: model.ASILB, Period: 50 * dynaplat.Millisecond,
			WCET: 5 * dynaplat.Millisecond, Deadline: 50 * dynaplat.Millisecond,
			MemoryKB: 512},
		ECU: res.Placement["ctl00"], // co-locate with an existing function
		Interfaces: []model.Interface{{
			Name: "parkassist.status", Owner: "parkassist",
			Paradigm: model.Event, PayloadBytes: 16,
			Period: 50 * dynaplat.Millisecond, Network: "backbone", Version: 1,
		}},
	}
	d, err := ctrl.Admit(req)
	if err != nil {
		log.Fatalf("admission rejected: %v", err)
	}
	fmt.Printf("\nadmitted parkassist onto %s: CPU util now %.2f, backbone load %.3f\n",
		req.ECU, d.CPUUtilAfter, d.BusLoadAfter["backbone"])

	// An absurd request is safely rejected with reasons.
	bad := req
	bad.App.Name = "hog"
	bad.App.WCET = 4 * dynaplat.Second // ≥ period even on the fastest ECU
	bad.App.Period = 100 * dynaplat.Millisecond
	bad.App.Deadline = 100 * dynaplat.Millisecond
	dec := ctrl.Check(bad)
	if dec.Admitted {
		log.Fatal("hog admitted — admission control broken")
	}
	fmt.Printf("rejected hog: %s\n", dec.Reasons[0])
}
