// Xiltesting demonstrates the paper's Section 2.4 X-in-the-loop workflow:
// the same cruise controller is exercised at MiL, SiL and HiL-equivalent
// levels — with identical fault coverage but very different cost — and a
// quarter-car suspension function shows a second domain on the same
// harness. Run with:
//
//	go run ./examples/xiltesting
package main

import (
	"fmt"
	"log"

	"dynaplat/internal/sim"
	"dynaplat/internal/xil"
)

func main() {
	fmt.Println("cruise control through the XiL levels (0→25 m/s step):")
	fmt.Printf("%-5s %-9s %-11s %-13s %-8s\n",
		"level", "settled", "settling", "stuck-sensor", "events")
	var base uint64
	for _, level := range []xil.Level{xil.MiL, xil.SiL, xil.HiL} {
		nominal, err := xil.Run(level, xil.NewVehicle(), xil.NewCruisePID(),
			xil.CruiseStep(), xil.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		faulty := xil.CruiseStep()
		faulty.Fault = xil.FaultSensorStuck
		faulty.FaultAt = sim.Time(5 * sim.Second)
		withFault, err := xil.Run(level, xil.NewVehicle(), xil.NewCruisePID(),
			faulty, xil.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		if level == xil.MiL {
			base = nominal.Events
		}
		fmt.Printf("%-5v %-9v %-11v found=%-7v %6d (%.1fx MiL)\n",
			level, nominal.Settled, nominal.SettlingTime,
			withFault.FaultDetected, nominal.Events,
			float64(nominal.Events)/float64(base))
	}

	fmt.Println("\nquarter-car suspension over a 5cm pothole (MiL ride test):")
	period := sim.Millisecond
	passive := xil.RideTest(pothole(), &xil.Skyhook{Active: false}, 5*sim.Second, period)
	active := xil.RideTest(pothole(), xil.NewSkyhook(), 5*sim.Second, period)
	fmt.Printf("  passive damper: body-accel RMS %.4f m/s², peak travel %.1f mm\n",
		passive.AccelRMS, passive.PeakBody*1000)
	fmt.Printf("  skyhook active: body-accel RMS %.4f m/s², peak travel %.1f mm\n",
		active.AccelRMS, active.PeakBody*1000)
	fmt.Printf("  comfort improvement: %.0f%%\n",
		(1-active.AccelRMS/passive.AccelRMS)*100)
}

func pothole() *xil.QuarterCar {
	q := xil.NewQuarterCar()
	q.Road = xil.Pothole(0.05, 500*sim.Millisecond, 600*sim.Millisecond)
	return q
}
