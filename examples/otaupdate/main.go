// Otaupdate walks the paper's full over-the-air update pipeline
// (Sections 3.2 and 4.1): the OEM backend signs a package, an update
// master verifies it on behalf of a weak ECU, and the running control
// application is then updated with the four-phase staged protocol —
// start new version in parallel, synchronize state, redirect traffic,
// stop the old version — without missing a single control deadline.
// Run with:
//
//	go run ./examples/otaupdate
package main

import (
	"fmt"
	"log"

	"dynaplat"
	secpkg "dynaplat/internal/security/pkg"
)

const vehicle = `
system OTA
ecu CPM  cpu=400MHz mem=4MB mmu crypto os=rtos cost=40
ecu Zone cpu=50MHz  mem=1MB mmu os=rtos cost=8
network Backbone type=ethernet rate=100Mbps attach=CPM,Zone

app Brake kind=da asil=D period=10ms wcet=2ms deadline=10ms mem=256KB on=CPM
iface BrakeStatus owner=Brake paradigm=event payload=16B period=10ms latency=8ms net=Backbone
`

func main() {
	s, err := dynaplat.FromDSL(vehicle, dynaplat.Options{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	// --- §4.1: sign the new software and verify it via the update master.
	var seed [32]byte
	copy(seed[:], "oem-signing-key-for-this-example")
	oem := dynaplat.NewPackageAuthority("OEM", seed)
	trust := dynaplat.NewTrustStore()
	trust.Trust("OEM", oem.PublicKey())

	image := make([]byte, 128<<10)
	signed := oem.Sign(secpkg.Package{App: "Brake", Version: 2, Image: image})

	masters := []*secpkg.MasterECU{
		{Name: "CPM", CPUMHz: 400, CryptoHW: true, Alive: true},
	}
	pool := secpkg.NewMasterPool(s.Kernel, trust, masters)
	psk := []byte("zone-trust-relationship-key")
	pool.Enroll("Zone", psk)

	direct := secpkg.VerifyCost(len(image), 50, false)
	fmt.Printf("direct verification on the 50MHz zone ECU would take %v\n", direct)

	verified := false
	pool.VerifyFor("Zone", signed, func(f secpkg.Forwarded, err error) {
		if err != nil {
			log.Fatalf("package rejected: %v", err)
		}
		if err := secpkg.CheckForwarded(f, psk); err != nil {
			log.Fatalf("weak-ECU MAC check failed: %v", err)
		}
		verified = true
		fmt.Printf("update master verified the package at t=%v; zone MAC check costs %v\n",
			s.Kernel.Now(), secpkg.MACCost(len(image), 50, false))
	})

	// --- §3.2: staged runtime update while the brake keeps running.
	if err := s.StartAll(); err != nil {
		log.Fatal(err)
	}
	s.Node("CPM").Store().Put("Brake", "calibration", []byte("k=1.07"))

	mgr := dynaplat.NewUpdateManager(s)
	newSpec := dynaplat.App{Name: "Brake", Kind: s.App("Brake").Spec.Kind,
		ASIL: s.App("Brake").Spec.ASIL, Period: 10 * dynaplat.Millisecond,
		WCET: 2 * dynaplat.Millisecond, Deadline: 10 * dynaplat.Millisecond,
		MemoryKB: 256, Version: 2}

	old := s.App("Brake") // capture before phase 4 uninstalls it
	var report dynaplat.UpdateReport
	s.Kernel.At(dynaplat.Time(500*dynaplat.Millisecond), func() {
		if !verified {
			log.Fatal("package not verified before install")
		}
		err := mgr.Staged("Brake", newSpec, dynaplat.Behavior{},
			[]dynaplat.UpdateOffers{{Iface: "BrakeStatus",
				Opts: dynaplat.OfferOpts{Network: "Backbone"}}},
			func(r dynaplat.UpdateReport) { report = r })
		if err != nil {
			log.Fatal(err)
		}
	})

	s.Run(2 * dynaplat.Second)

	cur := s.App("Brake@2") // the updated instance
	if cur == nil {
		log.Fatal("update did not complete")
	}
	fmt.Printf("\nstaged update v%d→v%d:\n", report.From, report.To)
	for _, st := range report.Stamps {
		fmt.Printf("  %-14s %v .. %v\n", st.Phase, st.Start, st.End)
	}
	fmt.Printf("downtime: %v   state keys synced: %d   peak memory: %dKB\n",
		report.Downtime, report.SyncedKeys, report.PeakMemoryKB)
	total := cur.Activations
	if old != nil {
		total += old.Activations
	}
	fmt.Printf("control coverage: %d activations over 200 periods, %d misses\n",
		total, cur.Misses)
	if v, ok := s.Node("CPM").Store().Get("Brake@2", "calibration"); ok {
		fmt.Printf("calibration survived the update: %s\n", v)
	}
}
