// Failover demonstrates the paper's Section 3.3 fail-operational
// redundancy: a steering function is instantiated on three ECUs in a
// master/slave group; at highway speed one ECU dies; the platform
// detects the lost heartbeat, promotes a hot-standby replica, and the
// function keeps operating — the safe state is continued operation, not
// shutdown. Run with:
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"dynaplat"
)

const vehicle = `
system Failover
ecu CPM1 cpu=200MHz mem=2MB mmu os=rtos cost=20
ecu CPM2 cpu=200MHz mem=2MB mmu os=rtos cost=20
ecu CPM3 cpu=200MHz mem=2MB mmu os=rtos cost=20
network Backbone type=ethernet rate=100Mbps attach=CPM1,CPM2,CPM3
`

func main() {
	s, err := dynaplat.FromDSL(vehicle, dynaplat.Options{Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	mgr := dynaplat.NewRedundancyManager(s)
	spec := dynaplat.App{Name: "Steer", Kind: dynaplat.Deterministic, ASIL: dynaplat.ASILD,
		Period: 10 * dynaplat.Millisecond, WCET: 2 * dynaplat.Millisecond,
		Deadline: 10 * dynaplat.Millisecond, MemoryKB: 128, Replicas: 3, Version: 1}

	cfg := dynaplat.DefaultRedundancyConfig()
	group, err := mgr.Replicate(spec, []string{"CPM1", "CPM2", "CPM3"},
		dynaplat.Behavior{}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := group.Start(); err != nil {
		log.Fatal(err)
	}

	// Kill the master's ECU at t = 1s, and the next master at t = 3s.
	s.Kernel.At(dynaplat.Time(1*dynaplat.Second), func() {
		fmt.Printf("t=%v: CPM1 fails hard\n", s.Kernel.Now())
		mgr.FailECU("CPM1")
	})
	s.Kernel.At(dynaplat.Time(3*dynaplat.Second), func() {
		fmt.Printf("t=%v: CPM2 fails hard\n", s.Kernel.Now())
		mgr.FailECU("CPM2")
	})

	s.Run(5 * dynaplat.Second)

	fmt.Printf("\nsteer outputs delivered: %d (over 500 periods, 2 ECUs lost)\n",
		group.Outputs)
	for i, ev := range group.Failovers {
		fmt.Printf("failover %d: %s died, detected at %v, %s promoted at %v, service gap %v\n",
			i+1, ev.FailedECU, ev.DetectedAt, ev.NewMaster, ev.PromotedAt, ev.ServiceGap)
	}
	if len(group.Failovers) != 2 {
		log.Fatal("expected two failovers")
	}
	fmt.Println("\nthe function survived both ECU failures (fail-operational).")
}
