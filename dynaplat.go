// Package dynaplat is the public facade over the dynamic-platform
// reproduction of Mundhenk et al., "Dynamic Platforms for Uncertainty
// Management in Future Automotive E/E Architectures" (DAC 2017).
//
// A Simulation wires together everything a scenario needs: the
// deterministic virtual-time kernel, the simulated in-vehicle networks
// built from the system model, the SOA middleware, and a platform node
// per ECU. Build one from DSL text (see internal/model for the syntax):
//
//	sim, err := dynaplat.FromDSL(dslText, dynaplat.Options{Seed: 1})
//	...
//	sim.StartAll()
//	sim.Run(5 * dynaplat.Second)
//
// The subsystem packages under internal/ carry the full functionality;
// this package re-exports the types needed to drive end-to-end scenarios.
package dynaplat

import (
	"fmt"

	"dynaplat/internal/can"
	"dynaplat/internal/flexray"
	"dynaplat/internal/model"
	"dynaplat/internal/network"
	"dynaplat/internal/platform"
	"dynaplat/internal/sim"
	"dynaplat/internal/soa"
	"dynaplat/internal/tsn"
)

// Re-exported core types. The subsystem packages remain the source of
// truth; these aliases let applications build scenarios without
// spelling out internal import paths.
type (
	// Kernel is the deterministic discrete-event executive.
	Kernel = sim.Kernel
	// Time and Duration are virtual-time instants and spans.
	Time = sim.Time
	// Duration is a span of virtual time.
	Duration = sim.Duration
	// System is the parsed system model.
	System = model.System
	// Platform spans the per-ECU runtimes.
	Platform = platform.Platform
	// Node is the dynamic-platform runtime on one ECU.
	Node = platform.Node
	// AppInstance is one installed application.
	AppInstance = platform.AppInstance
	// Behavior configures what an application does when activated.
	Behavior = platform.Behavior
	// Middleware is the service-oriented communication layer.
	Middleware = soa.Middleware
	// Endpoint is an application's port into the middleware.
	Endpoint = soa.Endpoint
	// Event is a delivered publication, stream frame or RPC response.
	Event = soa.Event
	// OfferOpts configures an offered service interface.
	OfferOpts = soa.OfferOpts
	// Mode selects the CPU isolation strategy of a node.
	Mode = platform.Mode
)

// Virtual-time duration units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// CPU isolation modes (see platform.Mode).
const (
	ModeIsolated = platform.ModeIsolated
	ModeShared   = platform.ModeShared
)

// Application kinds and ASIL levels, re-exported from the model.
const (
	Deterministic    = model.Deterministic
	NonDeterministic = model.NonDeterministic
	QM               = model.QM
	ASILA            = model.ASILA
	ASILB            = model.ASILB
	ASILC            = model.ASILC
	ASILD            = model.ASILD
)

// ParseModel parses DSL text into a system model.
func ParseModel(dsl string) (*System, error) { return model.ParseString(dsl) }

// ValidateModel runs the verification engine and returns the findings
// rendered as strings (empty means the model is clean of errors; warnings
// are included).
func ValidateModel(sys *System) (findings []string, ok bool) {
	rep := model.Validate(sys)
	for _, f := range rep.Findings {
		findings = append(findings, f.String())
	}
	return findings, rep.OK()
}

// Options configures FromDSL.
type Options struct {
	// Seed feeds the deterministic RNG (default 1).
	Seed uint64
	// Mode selects the CPU model of every node (default ModeIsolated).
	Mode Mode
	// Granularity is the schedule-table quantum (default 250µs).
	Granularity Duration
	// Authorizer guards service bindings (default allow-all).
	Authorizer soa.Authorizer
}

// Simulation is a fully wired scenario.
type Simulation struct {
	Kernel     *Kernel
	Model      *System
	Platform   *Platform
	Middleware *Middleware
	// Networks holds the simulated buses by model network name.
	Networks map[string]network.Network
}

// FromDSL parses, validates and instantiates a complete simulation:
// one simulated network per model network (CAN, FlexRay or Ethernet/TSN),
// a shared middleware, and a platform node per ECU with every placed
// application installed.
func FromDSL(dsl string, opts Options) (*Simulation, error) {
	sys, err := model.ParseString(dsl)
	if err != nil {
		return nil, err
	}
	return FromModel(sys, opts)
}

// FromModel instantiates a simulation from an already-built model.
func FromModel(sys *System, opts Options) (*Simulation, error) {
	if rep := model.Validate(sys); !rep.OK() {
		return nil, fmt.Errorf("dynaplat: model invalid: %v", rep.Errors()[0])
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	k := sim.NewKernel(opts.Seed)
	mw := soa.New(k, opts.Authorizer)
	s := &Simulation{
		Kernel:     k,
		Model:      sys,
		Middleware: mw,
		Networks:   map[string]network.Network{},
	}
	for _, n := range sys.Networks {
		var net network.Network
		var mtu int
		switch n.Kind {
		case model.NetCAN:
			net = can.New(k, can.Config{Name: n.Name, BitsPerSecond: n.BitsPerSecond,
				WorstCaseStuffing: true})
			mtu = can.MaxPayload
		case model.NetFlexRay:
			cfg := flexray.DefaultConfig(n.Name)
			cfg.BitsPerSecond = n.BitsPerSecond
			fr := flexray.New(k, cfg)
			// Give every attached ECU one static slot, in order.
			for i, ecu := range n.Attached {
				if i < cfg.StaticSlots {
					fr.AssignSlot(i, ecu)
				}
			}
			net = fr
			mtu = cfg.StaticPayload
		default:
			net = tsn.New(k, tsn.DefaultConfig(n.Name))
			mtu = 1400
		}
		mw.AddNetwork(net, mtu)
		s.Networks[n.Name] = net
	}
	p := platform.New(k, mw)
	if err := platform.Deploy(p, sys, opts.Mode, opts.Granularity); err != nil {
		return nil, err
	}
	s.Platform = p

	// Wire declared interfaces and bindings through the middleware:
	// owners offer, clients subscribe (Event/Stream) — Message handlers
	// are application logic and must be offered by the app itself.
	for _, ifc := range sys.Interfaces {
		owner := ifc.Owner
		ecu, placed := sys.Placement[owner]
		if !placed {
			continue
		}
		class := network.ClassPriority
		if a := sys.App(owner); a != nil && a.Kind == model.Deterministic {
			class = network.ClassControl
		}
		if ifc.Paradigm == model.Stream {
			class = network.ClassBulk
		}
		if ifc.Paradigm != model.Message {
			mw.Endpoint(owner, ecu).Offer(ifc.Name, soa.OfferOpts{
				Class: class, Network: ifc.Network, Version: ifc.Version,
			})
		}
	}
	return s, nil
}

// StartAll starts every installed application.
func (s *Simulation) StartAll() error { return s.Platform.StartAll() }

// Run advances virtual time by d.
func (s *Simulation) Run(d Duration) { s.Kernel.RunFor(d) }

// Node returns the platform runtime on the named ECU, or nil.
func (s *Simulation) Node(ecu string) *Node { return s.Platform.Node(ecu) }

// App locates an installed application across all nodes, or nil.
func (s *Simulation) App(name string) *AppInstance {
	inst, _ := s.Platform.FindApp(name)
	return inst
}

// Endpoint returns (creating if needed) the middleware endpoint of an
// application placed in the model.
func (s *Simulation) Endpoint(app string) (*Endpoint, error) {
	ecu, ok := s.Model.Placement[app]
	if !ok {
		return nil, fmt.Errorf("dynaplat: app %s is not placed", app)
	}
	return s.Middleware.Endpoint(app, ecu), nil
}
